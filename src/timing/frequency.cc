/**
 * @file
 * Frequency model implementation.
 */

#include "timing/frequency.hh"

namespace siopmp {
namespace timing {

double
achievableFrequencyMhz(const CheckerGeometry &geometry,
                       const FrequencyParams &params)
{
    const double ns = criticalPathNs(geometry, params.gate);
    double mhz = 1000.0 / ns;
    if (mhz < params.routing_floor_mhz)
        return 0.0;
    if (mhz > params.platform_cap_mhz)
        mhz = params.platform_cap_mhz;
    return mhz;
}

bool
meetsPlatformCap(const CheckerGeometry &geometry,
                 const FrequencyParams &params)
{
    return achievableFrequencyMhz(geometry, params) >=
           params.platform_cap_mhz;
}

} // namespace timing
} // namespace siopmp
