/**
 * @file
 * FPGA resource (LUT / FF) model for the sIOPMP module (drives the
 * Fig 14 sweep). Costs are reported as a percentage of a FireSim-class
 * device (Xilinx VU9P: ~1.18 M LUTs, ~2.36 M FFs).
 *
 * Composition:
 *  - every entry needs match logic (comparators) and storage FFs;
 *  - linear arbitration adds a priority-chain mux per entry, and —
 *    dominating everything at large entry counts — the backend must
 *    spend LUTs and FFs as buffers to meet timing/voltage on the long
 *    serial chain; buffer count grows superlinearly with the chain;
 *  - tree arbitration replaces the chain with (window - 1) small merge
 *    nodes and needs essentially no buffering;
 *  - each pipeline stage boundary adds one register slice.
 */

#ifndef TIMING_RESOURCE_HH
#define TIMING_RESOURCE_HH

#include "timing/gate_model.hh"

namespace siopmp {
namespace timing {

struct ResourceParams {
    double device_luts = 1'182'240.0; //!< VU9P
    double device_ffs = 2'364'480.0;

    double match_luts_per_entry = 22.0;  //!< two 64-bit comparators
    double storage_ffs_per_entry = 55.0; //!< entry registers
    double chain_luts_per_entry = 4.0;   //!< linear priority mux
    double tree_luts_per_node = 6.0;     //!< verdict merge node
    double tree_ffs_per_node = 0.5;

    //! Buffer LUTs inserted on a linear chain of W entries:
    //! buffer_lut_coeff * W^buffer_lut_exp (fit to the 17.3% anchor).
    double buffer_lut_coeff = 2.53;
    double buffer_lut_exp = 1.8;
    //! Buffer/duplication FFs per chained entry.
    double buffer_ffs_per_entry = 28.0;

    double pipeline_ffs_per_stage = 220.0; //!< request/verdict regs
    double pipeline_luts_per_stage = 40.0;
};

struct ResourceUsage {
    double luts = 0.0;
    double ffs = 0.0;
    double lut_pct = 0.0; //!< percentage of device LUTs
    double ff_pct = 0.0;  //!< percentage of device FFs
};

ResourceUsage estimateResources(const CheckerGeometry &geometry,
                                const ResourceParams &params = {});

} // namespace timing
} // namespace siopmp

#endif // TIMING_RESOURCE_HH
