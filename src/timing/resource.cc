/**
 * @file
 * Resource model implementation.
 */

#include "timing/resource.hh"

#include <cmath>

namespace siopmp {
namespace timing {

ResourceUsage
estimateResources(const CheckerGeometry &geometry,
                  const ResourceParams &params)
{
    const bool tree = geometry.kind == iopmp::CheckerKind::Tree ||
                      geometry.kind == iopmp::CheckerKind::PipelineTree;
    const double entries = geometry.entries;
    const double window = widestStageEntries(geometry);

    ResourceUsage usage;

    // Common: match logic and entry storage.
    usage.luts = entries * params.match_luts_per_entry;
    usage.ffs = entries * params.storage_ffs_per_entry;

    if (tree) {
        // An arity-k tree over W leaves has ceil((W-1)/(k-1)) internal
        // nodes; a k-ary merge costs about (k-1) binary merges' logic
        // but amortizes per-node overhead, which is why wide trees
        // save area ("N-ary tree for area").
        const double k = geometry.arity;
        const double nodes =
            geometry.stages *
            std::ceil(std::max(0.0, window - 1.0) / (k - 1.0));
        const double node_luts =
            geometry.arity == 2
                ? params.tree_luts_per_node
                : params.tree_luts_per_node * (k - 1.0) * 0.85;
        usage.luts += nodes * node_luts;
        usage.ffs += nodes * params.tree_ffs_per_node;
    } else {
        usage.luts += entries * params.chain_luts_per_entry;
        // Buffer insertion on each stage's serial chain.
        usage.luts += geometry.stages *
                      params.buffer_lut_coeff *
                      std::pow(window, params.buffer_lut_exp);
        usage.ffs += entries * params.buffer_ffs_per_entry;
    }

    if (geometry.stages > 1) {
        usage.ffs += (geometry.stages - 1) * params.pipeline_ffs_per_stage;
        usage.luts +=
            (geometry.stages - 1) * params.pipeline_luts_per_stage;
    }

    usage.lut_pct = 100.0 * usage.luts / params.device_luts;
    usage.ff_pct = 100.0 * usage.ffs / params.device_ffs;
    return usage;
}

} // namespace timing
} // namespace siopmp
