/**
 * @file
 * Gate-delay model implementation.
 *
 * Level model per pipeline stage (window = entries / stages):
 *  - match unit: fixed depth (parallel for all entries);
 *  - linear arbitration: synthesis packs an 8-entry priority mux into
 *    one LUT level, so the chain contributes window/8 levels;
 *  - tree arbitration: one reduction level per log_arity step (each
 *    level costs ~2 LUT levels for the verdict merge) plus a small
 *    fan-in/wiring term that grows with the window.
 *
 * Past ~40 levels the router must insert buffers and the chain leaves
 * the local region, so each additional level costs more. These
 * constants reproduce the paper's Fig 10 anchors; the calibration is
 * tabulated in EXPERIMENTS.md.
 */

#include "timing/gate_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace siopmp {
namespace timing {

unsigned
widestStageEntries(const CheckerGeometry &geometry)
{
    SIOPMP_ASSERT(geometry.stages >= 1, "bad stage count");
    return (geometry.entries + geometry.stages - 1) / geometry.stages;
}

double
criticalPathLevels(const CheckerGeometry &geometry)
{
    const GateModelParams params;
    const unsigned window = widestStageEntries(geometry);
    const bool tree = geometry.kind == iopmp::CheckerKind::Tree ||
                      geometry.kind == iopmp::CheckerKind::PipelineTree;

    double levels = params.match_levels;
    if (window <= 1)
        return levels;

    if (tree) {
        const double depth =
            std::ceil(std::log(static_cast<double>(window)) /
                      std::log(static_cast<double>(geometry.arity)));
        // A k-ary priority merge still resolves priority among its k
        // inputs, so the per-node logic deepens with arity; binary
        // nodes minimize total delay ("binary tree for timing").
        const double node_levels =
            params.tree_levels_per_node *
            (1.0 + 0.6 * (geometry.arity - 2));
        levels += depth * node_levels;
        // Wire/fan-in growth of the physical tree.
        levels += static_cast<double>(window) / 320.0;
    } else {
        levels += static_cast<double>(window) / 8.0;
    }
    return levels;
}

double
criticalPathNs(const CheckerGeometry &geometry,
               const GateModelParams &params)
{
    const double levels = criticalPathLevels(geometry);
    double delay = params.setup_overhead_ns;
    if (levels <= params.buffer_threshold_levels) {
        delay += levels * params.ns_per_level;
    } else {
        delay += params.buffer_threshold_levels * params.ns_per_level;
        delay += (levels - params.buffer_threshold_levels) *
                 params.buffered_ns_per_level;
    }
    return delay;
}

} // namespace timing
} // namespace siopmp
