/**
 * @file
 * CPU-side PMP (Physical Memory Protection) model. In the paper's
 * system the extended IOPMP table lives in ordinary memory protected
 * by PMP entries only M-mode can reconfigure; here the PMP guards
 * firmware-only regions against S/U-mode CPU accesses. Semantics
 * follow the RISC-V priv spec subset the monitor needs: priority
 * entries with R/W/X permissions and a lock bit that binds M-mode too.
 */

#ifndef FW_PMP_HH
#define FW_PMP_HH

#include <array>
#include <optional>

#include "sim/types.hh"

namespace siopmp {
namespace fw {

/** CPU privilege modes relevant to PMP checks. */
enum class PrivMode { U, S, M };

class Pmp
{
  public:
    static constexpr unsigned kEntries = 16;

    struct PmpEntry {
        bool valid = false;
        Addr base = 0;
        Addr size = 0;
        bool r = false, w = false, x = false;
        bool locked = false;
    };

    /**
     * Program entry @p idx. Fails if the existing entry is locked.
     */
    bool set(unsigned idx, Addr base, Addr size, bool r, bool w, bool x,
             bool lock = false);

    /** Clear entry @p idx (fails if locked). */
    bool clear(unsigned idx);

    const PmpEntry &entry(unsigned idx) const;

    /**
     * Check an access of @p len bytes at @p addr. Priority first-match
     * like the IOPMP: the lowest-index entry overlapping the access
     * decides. M-mode accesses are implicitly allowed unless the
     * deciding entry is locked. No match: M allowed, S/U denied
     * (monitor runs with default-deny for lower privileges).
     */
    bool check(Addr addr, Addr len, Perm perm, PrivMode mode) const;

  private:
    std::array<PmpEntry, kEntries> entries_{};
};

} // namespace fw
} // namespace siopmp

#endif // FW_PMP_HH
