/**
 * @file
 * Pmp implementation.
 */

#include "fw/pmp.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace fw {

bool
Pmp::set(unsigned idx, Addr base, Addr size, bool r, bool w, bool x,
         bool lock)
{
    SIOPMP_ASSERT(idx < kEntries, "PMP index out of range");
    if (entries_[idx].valid && entries_[idx].locked)
        return false;
    entries_[idx] = PmpEntry{true, base, size, r, w, x, lock};
    return true;
}

bool
Pmp::clear(unsigned idx)
{
    SIOPMP_ASSERT(idx < kEntries, "PMP index out of range");
    if (entries_[idx].valid && entries_[idx].locked)
        return false;
    entries_[idx] = PmpEntry{};
    return true;
}

const Pmp::PmpEntry &
Pmp::entry(unsigned idx) const
{
    SIOPMP_ASSERT(idx < kEntries, "PMP index out of range");
    return entries_[idx];
}

bool
Pmp::check(Addr addr, Addr len, Perm perm, PrivMode mode) const
{
    for (const auto &e : entries_) {
        if (!e.valid || len == 0)
            continue;
        const bool overlap = addr < e.base + e.size && e.base < addr + len;
        if (!overlap)
            continue;
        // Deciding entry found (priority order).
        if (mode == PrivMode::M && !e.locked)
            return true; // unlocked entries do not bind M-mode
        const bool contained =
            addr >= e.base && len <= e.size && addr - e.base <= e.size - len;
        if (!contained)
            return false;
        if (permits(perm, Perm::Read) && !e.r)
            return false;
        if (permits(perm, Perm::Write) && !e.w)
            return false;
        return true;
    }
    return mode == PrivMode::M;
}

} // namespace fw
} // namespace siopmp
