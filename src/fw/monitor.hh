/**
 * @file
 * The secure monitor (§5.4): the lightweight M-mode firmware in the
 * TCB. It is the only software allowed to touch the sIOPMP registers,
 * the PMP-protected extended IOPMP table and the PMP itself.
 *
 * Structure follows the paper: a hardware-controller half (sIOPMP
 * driver, PMP controller, interrupt controller) and a capability layer
 * (TEE manager, device manager, memory manager with ownership chains).
 *
 * Exposed operations:
 *  - createTee(): mint a TEE and transfer memory/device capabilities;
 *  - deviceMap()/deviceUnmap(): ownership-validated binding of a
 *    memory range to a device's IOPMP entries, with the per-SID
 *    blocking primitive making each update atomic (Fig 13 costs);
 *  - cold-device switching on SID-missing interrupts (§4.2) and
 *    explicit/implicit hot promotion via the DeviceID2SID CAM (§4.3);
 *  - S-mode delegation: a range of low-priority entries the untrusted
 *    kernel may program directly, always dominated by the monitor's
 *    high-priority entries.
 *
 * Every operation returns its CPU cycle cost, assembled from actual
 * MMIO accesses on the periphery bus, extended-table memory loads and
 * documented software overheads.
 */

#ifndef FW_MONITOR_HH
#define FW_MONITOR_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bus/monitor.hh"
#include "fw/cap_space.hh"
#include "fw/interrupt_ctrl.hh"
#include "fw/pmp.hh"
#include "fw/tee.hh"
#include "iopmp/mountable.hh"
#include "iopmp/siopmp.hh"
#include "mem/mmio.hh"
#include "sim/stats.hh"

namespace siopmp {
namespace fw {

struct MonitorConfig {
    unsigned entries_per_hot_md = 8; //!< entry window per hot device
    unsigned cold_window_entries = 8; //!< MD62's entry window
    Cycle ext_load_cost = 4;       //!< per 64-bit extended-table load
    Cycle entry_sw_overhead = 8;   //!< per-entry cost beyond 3 MMIO writes
    Cycle block_overhead = 31;     //!< pipeline drain + bookkeeping
    Cycle cold_switch_overhead = 37; //!< cold-switch bookkeeping
    unsigned promote_threshold = 3; //!< SID misses before implicit promote
};

/** Result of a monitor call: success plus CPU cycles consumed. */
struct FwResult {
    bool ok = false;
    Cycle cost = 0;
    unsigned entry_index = 0; //!< for deviceMap: installed entry
};

class SecureMonitor
{
  public:
    /**
     * @param unit        the sIOPMP hardware (functional model)
     * @param mmio        periphery bus carrying the register window
     * @param mmio_base   base address of the sIOPMP window
     * @param ext_table   extended IOPMP table in protected memory
     * @param bus_monitor block-state monitor (may be null: the drain
     *                    wait is then charged as block_overhead only)
     */
    SecureMonitor(iopmp::SIopmp *unit, mem::MmioBus *mmio, Addr mmio_base,
                  iopmp::ExtendedTable *ext_table,
                  bus::BusMonitor *bus_monitor, MonitorConfig cfg = {});

    // ---- boot-time setup -------------------------------------------------

    /**
     * Partition the entry table into per-MD windows (hot MDs 0..61 get
     * entries_per_hot_md each, MD62 gets the cold window), program the
     * PMP to protect the extended table, and mint root capabilities.
     */
    void init(mem::Range dram, mem::Range protected_region);

    /** Register a device at boot; returns its root capability. */
    CapId registerDevice(DeviceId device);

    // ---- TEE lifecycle (ownership-based interface, Fig 9) --------------

    /**
     * Create_TEE(): mint a TEE, derive the requested memory range from
     * the DRAM root capability and transfer it plus the device caps.
     */
    OwnerId createTee(const std::string &name, mem::Range memory,
                      const std::vector<CapId> &devices);

    Tee *tee(OwnerId owner);

    /**
     * Destroy_TEE(): tear a domain down. Every device mapping is
     * removed under the per-SID block, the TEE's devices are demoted
     * out of the CAM (their extended-table records dropped — a
     * destroyed TEE's rules must not be remountable), and every
     * capability the TEE held is revoked through the ownership chain.
     */
    FwResult destroyTee(OwnerId owner, Cycle now = 0);

    // ---- device mapping --------------------------------------------------

    /**
     * Device_map(): bind [range] with @p perm to @p device for the TEE
     * @p owner. Validates the ownership chain (TEE must own the device
     * capability and a memory capability covering the range), ensures
     * the device is hot (promoting it if a CAM row is free), and
     * installs an IOPMP entry in the device's MD window under the
     * per-SID block.
     */
    FwResult deviceMap(OwnerId owner, DeviceId device, mem::Range range,
                       Perm perm, Cycle now = 0);

    /** Device_unmap(): remove a mapping installed by deviceMap. */
    FwResult deviceUnmap(OwnerId owner, DeviceId device,
                         unsigned entry_index, Cycle now = 0);

    /**
     * Scatter-gather Device_map (§2's motivating workload: DMA
     * controllers with hundreds of scatter buffers). Installs one
     * IOPMP entry per segment under a single per-SID block bracket —
     * the whole list becomes visible atomically, at the Fig 13 cost of
     * 35 + 14 * segments cycles. Every segment must be covered by the
     * TEE's memory capabilities.
     */
    FwResult deviceMapSg(OwnerId owner, DeviceId device,
                         const std::vector<mem::Range> &segments,
                         Perm perm, Cycle now = 0);

    /**
     * Atomically replace @p count entries of @p device's window
     * starting at its window base (the Fig 13 experiment: cost =
     * blocking + 14 per entry). With @p atomic false the block step is
     * skipped — insecure, shown only as the Fig 13 "No-atomic" bar.
     */
    FwResult modifyEntries(DeviceId device,
                           const std::vector<iopmp::Entry> &entries,
                           bool atomic, Cycle now = 0);

    // ---- hot/cold management --------------------------------------------

    /**
     * Register a cold device: its rules live in the extended table
     * only, to be mounted on first use.
     */
    bool registerColdDevice(const iopmp::MountRecord &record);

    /** Explicit switching: force @p device into a hot CAM row. */
    FwResult promoteToHot(DeviceId device, Cycle now = 0);

    /** Explicit switching: demote a hot device to the extended table. */
    FwResult demoteToCold(DeviceId device, Cycle now = 0);

    /** Service pending sIOPMP interrupts; returns CPU cycles. */
    Cycle serviceInterrupts(Cycle now);

    // ---- S-mode delegation ----------------------------------------------

    /**
     * Delegate the low-priority entry window [lo, hi) to S-mode. The
     * kernel may then program those entries directly (smodeSetEntry),
     * but monitor-owned high-priority entries always dominate.
     */
    void delegateToSmode(unsigned lo, unsigned hi);

    /** S-mode attempt to program an entry; honors the delegation. */
    FwResult smodeSetEntry(unsigned index, const iopmp::Entry &entry,
                           Cycle now = 0);

    // ---- accessors --------------------------------------------------------

    CapSpace &caps() { return caps_; }
    Pmp &pmp() { return pmp_; }
    InterruptController &irqController() { return irq_ctrl_; }
    const MonitorConfig &config() const { return cfg_; }
    std::uint64_t coldSwitches() const { return cold_switches_; }
    std::uint64_t violationsHandled() const { return violations_; }

    /**
     * Lifecycle statistics: "cold_switch_cycles" distribution (full
     * handler cost per cold switch, implicit promotions included) plus
     * promotion/demotion/eviction counters. Registered with
     * stats::Registry::global() like every component group.
     */
    stats::Group &statsGroup() { return stats_; }

    /** Hot SID for a device, if currently assigned. */
    std::optional<Sid> hotSid(DeviceId device) const;

    /** Entry window [lo, hi) of the MD paired with SID @p sid. */
    std::pair<unsigned, unsigned> mdWindow(Sid sid) const;

  private:
    Cycle mmioWrite(Addr offset, std::uint64_t value);
    Cycle mmioRead(Addr offset, std::uint64_t *value = nullptr);

    /** Write one entry via its three MMIO registers. */
    Cycle writeEntry(unsigned index, const iopmp::Entry &entry);

    /** Per-SID block / drain / unblock bracket. */
    Cycle blockSid(Sid sid, DeviceId device);
    Cycle unblockSid(Sid sid);

    /** Cold switch: mount @p device from the extended table. */
    Cycle coldSwitch(DeviceId device, Cycle now);

    /**
     * Flush a hot device out of the hardware: write off its used
     * window entries and invalidate its CAM row, all under the per-SID
     * block. The caller decides what happens to the rules (preserve
     * them in the extended table *before* calling, or drop them on TEE
     * destruction) — this helper only guarantees no stale entry
     * survives in the window for the next occupant to inherit.
     */
    Cycle evictHot(DeviceId device, Sid sid);

    /**
     * Clear the eSID slot while @p device is mounted there: write off
     * MD62's whole entry window and zero the eSID register under the
     * cold SID's block. A pre-existing block (e.g. the CPU's in-flight
     * interrupt-handler latency window) is preserved — only a bracket
     * this call opened is closed.
     */
    Cycle flushMountedCold(DeviceId device);

    /**
     * Rewrite MD62's window from @p record (unused tail written off)
     * while its device stays mounted, preserving any pre-existing
     * block like flushMountedCold().
     */
    Cycle remountCold(const iopmp::MountRecord &record);

    Cycle handleViolation(const iopmp::Irq &irq, Cycle now);
    Cycle handleSidMissing(const iopmp::Irq &irq, Cycle now);

    iopmp::SIopmp *unit_;
    mem::MmioBus *mmio_;
    Addr mmio_base_;
    iopmp::ExtendedTable *ext_table_;
    bus::BusMonitor *bus_monitor_;
    MonitorConfig cfg_;

    CapSpace caps_;
    Pmp pmp_;
    InterruptController irq_ctrl_;

    CapId dram_root_ = kNoCap;
    std::unordered_map<DeviceId, CapId> device_roots_;
    std::unordered_map<OwnerId, std::unique_ptr<Tee>> tees_;
    OwnerId next_owner_ = 1;

    //! Per-entry-window occupancy bitmap, one bool per hardware entry.
    std::vector<bool> entry_used_;
    //! S-mode delegated window.
    unsigned smode_lo_ = 0, smode_hi_ = 0;
    //! Implicit-promotion miss counters.
    std::unordered_map<DeviceId, unsigned> miss_counts_;

    std::uint64_t cold_switches_ = 0;
    std::uint64_t violations_ = 0;

    stats::Group stats_{"monitor"};
    stats::Distribution *st_cold_switch_cycles_;
    stats::Scalar *st_promotions_;
    stats::Scalar *st_demotions_;
    stats::Scalar *st_cam_evictions_;
    stats::Scalar *st_evict_save_failures_;
    stats::Scalar *st_demote_save_failures_;
    stats::Scalar *st_mounted_cold_flushes_;
};

} // namespace fw
} // namespace siopmp

#endif // FW_MONITOR_HH
