/**
 * @file
 * Interrupt controller model for the secure monitor. sIOPMP raises
 * interrupts (violation, SID-missing) over the interrupt bus; the
 * controller queues them and dispatches to registered M-mode handlers
 * with a fixed trap-entry cost, which is part of the cold-device
 * switching latency the paper measures (341 cycles for 8 entries).
 */

#ifndef FW_INTERRUPT_CTRL_HH
#define FW_INTERRUPT_CTRL_HH

#include <deque>
#include <functional>

#include "iopmp/siopmp.hh"
#include "sim/types.hh"

namespace siopmp {

class EventQueue;
class Tickable;

namespace fw {

class InterruptController
{
  public:
    using Handler = std::function<Cycle(const iopmp::Irq &, Cycle now)>;

    /** @param trap_cost cycles to enter/exit the M-mode trap handler */
    explicit InterruptController(Cycle trap_cost = 80)
        : trap_cost_(trap_cost)
    {
    }

    /** Register the handler for one interrupt kind. */
    void setHandler(iopmp::IrqKind kind, Handler handler);

    /** Hardware side: latch a pending interrupt. With a delivery
     * latency configured (setDeliveryLatency), latching happens that
     * many cycles after the raise — modelling the registered interrupt
     * wire crossing the same boundary as the data links. */
    void raise(const iopmp::Irq &irq);

    /**
     * Model @p latency cycles between raise() and the interrupt
     * becoming pending (0 = immediate, the default). Delivery is
     * scheduled on @p queue at raise-cycle + latency; the raise cycle
     * is read from simctx::currentCycle(). A nonzero latency is what
     * lets the parallel engine run multi-cycle epochs across the
     * checker/monitor boundary: a raise issued mid-epoch latches at an
     * epoch boundary, where the scheduler clamps the next epoch to one
     * cycle while an interrupt is pending (see Soc).
     */
    void setDeliveryLatency(Cycle latency, EventQueue *queue);
    Cycle deliveryLatency() const { return delivery_latency_; }

    /**
     * Wire the component (typically the CpuNode) that polls pending();
     * raise() wakes it so it can sleep while no interrupt is latched.
     */
    void bindWake(Tickable *target) { wake_target_ = target; }

    /**
     * CPU side: service all pending interrupts at time @p now.
     * @return total CPU cycles consumed (trap entry + handler work).
     */
    Cycle service(Cycle now);

    bool pending() const { return !queue_.empty(); }
    std::uint64_t raised() const { return raised_; }
    std::uint64_t serviced() const { return serviced_; }
    Cycle trapCost() const { return trap_cost_; }

  private:
    void deliver(const iopmp::Irq &irq);

    Cycle trap_cost_;
    Cycle delivery_latency_ = 0;
    EventQueue *delivery_queue_ = nullptr;
    Tickable *wake_target_ = nullptr;
    std::deque<iopmp::Irq> queue_;
    Handler violation_handler_;
    Handler sid_missing_handler_;
    std::uint64_t raised_ = 0;
    std::uint64_t serviced_ = 0;
};

} // namespace fw
} // namespace siopmp

#endif // FW_INTERRUPT_CTRL_HH
