/**
 * @file
 * Capability space: allocation, derivation, transfer and revocation of
 * capabilities, with ownership-chain validation.
 */

#ifndef FW_CAP_SPACE_HH
#define FW_CAP_SPACE_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "fw/capability.hh"

namespace siopmp {
namespace fw {

class CapSpace
{
  public:
    CapSpace() = default;

    /** Mint a root capability (boot time; monitor-owned). */
    CapId mintMemory(mem::Range range, CapRights rights = CapRights::Full);
    CapId mintDevice(DeviceId device, CapRights rights = CapRights::Full);
    CapId mintInterrupt(unsigned irq_line,
                        CapRights rights = CapRights::Full);

    /**
     * Derive a child memory capability with a narrower range and/or
     * reduced rights. Requires Grant on the parent and the child range
     * fully inside the parent's. Child is owned by the parent's owner.
     */
    CapId deriveMemory(CapId parent, mem::Range range, CapRights rights);

    /** Derive a device capability with reduced rights. */
    CapId deriveDevice(CapId parent, CapRights rights);

    /**
     * Transfer ownership to @p new_owner. Requires Grant. Returns
     * false if the capability is revoked or lacks Grant.
     */
    bool transfer(CapId cap, OwnerId current_owner, OwnerId new_owner);

    /**
     * Fig 9's other transfer flavour: give @p new_owner a read-only
     * COPY while the giver keeps ownership. The copy is a child in the
     * ownership chain (revoking the original revokes every copy) with
     * Read rights only — no Map, no Grant, so it can neither be bound
     * to a device nor passed on.
     */
    CapId shareReadOnly(CapId cap, OwnerId current_owner,
                        OwnerId new_owner);

    /**
     * Revoke @p cap and every capability derived from it (the whole
     * subtree of the ownership chain).
     */
    bool revoke(CapId cap);

    /** Lookup (nullopt if unknown or revoked). */
    std::optional<Capability> get(CapId cap) const;

    /** Does @p owner hold a live capability @p cap with @p rights? */
    bool owns(CapId cap, OwnerId owner, CapRights rights) const;

    /** Live memory capability covering [addr, addr+len) owned by
     * @p owner with @p rights, if any. */
    std::optional<CapId> findMemoryCap(OwnerId owner, Addr addr, Addr len,
                                       CapRights rights) const;

    /** Live device capability for @p device owned by @p owner. */
    std::optional<CapId> findDeviceCap(OwnerId owner,
                                       DeviceId device) const;

    std::size_t liveCount() const;

  private:
    CapId insert(Capability cap);

    std::unordered_map<CapId, Capability> caps_;
    std::unordered_map<CapId, std::vector<CapId>> children_;
    CapId next_id_ = 1;
};

} // namespace fw
} // namespace siopmp

#endif // FW_CAP_SPACE_HH
