/**
 * @file
 * CapSpace implementation.
 */

#include "fw/cap_space.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace fw {

CapId
CapSpace::insert(Capability cap)
{
    cap.id = next_id_++;
    const CapId id = cap.id;
    if (cap.parent != kNoCap)
        children_[cap.parent].push_back(id);
    caps_.emplace(id, std::move(cap));
    return id;
}

CapId
CapSpace::mintMemory(mem::Range range, CapRights rights)
{
    Capability cap;
    cap.kind = CapKind::Memory;
    cap.rights = rights;
    cap.range = range;
    return insert(cap);
}

CapId
CapSpace::mintDevice(DeviceId device, CapRights rights)
{
    Capability cap;
    cap.kind = CapKind::Device;
    cap.rights = rights;
    cap.device = device;
    return insert(cap);
}

CapId
CapSpace::mintInterrupt(unsigned irq_line, CapRights rights)
{
    Capability cap;
    cap.kind = CapKind::Interrupt;
    cap.rights = rights;
    cap.irq_line = irq_line;
    return insert(cap);
}

CapId
CapSpace::deriveMemory(CapId parent, mem::Range range, CapRights rights)
{
    auto it = caps_.find(parent);
    if (it == caps_.end() || it->second.revoked)
        return kNoCap;
    const Capability &p = it->second;
    if (p.kind != CapKind::Memory ||
        !hasRights(p.rights, CapRights::Grant))
        return kNoCap;
    // The child may only narrow: range inside parent, rights subset.
    if (!p.range.containsBlock(range.base, range.size))
        return kNoCap;
    if ((rights | p.rights) != p.rights)
        return kNoCap;

    Capability child;
    child.parent = parent;
    child.kind = CapKind::Memory;
    child.rights = rights;
    child.owner = p.owner;
    child.range = range;
    return insert(child);
}

CapId
CapSpace::deriveDevice(CapId parent, CapRights rights)
{
    auto it = caps_.find(parent);
    if (it == caps_.end() || it->second.revoked)
        return kNoCap;
    const Capability &p = it->second;
    if (p.kind != CapKind::Device ||
        !hasRights(p.rights, CapRights::Grant))
        return kNoCap;
    if ((rights | p.rights) != p.rights)
        return kNoCap;

    Capability child;
    child.parent = parent;
    child.kind = CapKind::Device;
    child.rights = rights;
    child.owner = p.owner;
    child.device = p.device;
    return insert(child);
}

bool
CapSpace::transfer(CapId cap, OwnerId current_owner, OwnerId new_owner)
{
    auto it = caps_.find(cap);
    if (it == caps_.end() || it->second.revoked)
        return false;
    Capability &c = it->second;
    if (c.owner != current_owner)
        return false;
    if (!hasRights(c.rights, CapRights::Grant))
        return false;
    c.owner = new_owner;
    return true;
}

CapId
CapSpace::shareReadOnly(CapId cap, OwnerId current_owner,
                        OwnerId new_owner)
{
    auto it = caps_.find(cap);
    if (it == caps_.end() || it->second.revoked)
        return kNoCap;
    const Capability &original = it->second;
    if (original.owner != current_owner)
        return kNoCap;
    if (!hasRights(original.rights, CapRights::Grant) ||
        !hasRights(original.rights, CapRights::Read)) {
        return kNoCap;
    }

    Capability copy;
    copy.parent = cap;
    copy.kind = original.kind;
    copy.rights = CapRights::Read;
    copy.owner = new_owner;
    copy.range = original.range;
    copy.device = original.device;
    copy.irq_line = original.irq_line;
    return insert(copy);
}

bool
CapSpace::revoke(CapId cap)
{
    auto it = caps_.find(cap);
    if (it == caps_.end() || it->second.revoked)
        return false;
    it->second.revoked = true;
    auto kids = children_.find(cap);
    if (kids != children_.end()) {
        for (CapId child : kids->second)
            revoke(child);
    }
    return true;
}

std::optional<Capability>
CapSpace::get(CapId cap) const
{
    auto it = caps_.find(cap);
    if (it == caps_.end() || it->second.revoked)
        return std::nullopt;
    return it->second;
}

bool
CapSpace::owns(CapId cap, OwnerId owner, CapRights rights) const
{
    auto c = get(cap);
    return c && c->owner == owner && hasRights(c->rights, rights);
}

std::optional<CapId>
CapSpace::findMemoryCap(OwnerId owner, Addr addr, Addr len,
                        CapRights rights) const
{
    for (const auto &[id, cap] : caps_) {
        if (cap.revoked || cap.kind != CapKind::Memory)
            continue;
        if (cap.owner != owner || !hasRights(cap.rights, rights))
            continue;
        if (cap.range.containsBlock(addr, len))
            return id;
    }
    return std::nullopt;
}

std::optional<CapId>
CapSpace::findDeviceCap(OwnerId owner, DeviceId device) const
{
    for (const auto &[id, cap] : caps_) {
        if (cap.revoked || cap.kind != CapKind::Device)
            continue;
        if (cap.owner == owner && cap.device == device)
            return id;
    }
    return std::nullopt;
}

std::size_t
CapSpace::liveCount() const
{
    std::size_t n = 0;
    for (const auto &[id, cap] : caps_)
        n += !cap.revoked;
    return n;
}

} // namespace fw
} // namespace siopmp
