/**
 * @file
 * Capability abstraction for the secure monitor (§5.4, Fig 9). Every
 * hardware resource — a memory range, a device, an interrupt line —
 * is represented by a capability. Two operations exist:
 *
 *  - derive: create a child capability with a narrower scope (smaller
 *    memory range) or fewer rights; the child remembers its parent,
 *    forming the ownership chain.
 *  - transfer: move ownership (or grant a read-only copy) to another
 *    entity (the boot OS, a TEE, ...).
 *
 * The monitor validates every device-mapping request against this
 * chain: only the owner of both the device capability and the memory
 * capability may bind them.
 */

#ifndef FW_CAPABILITY_HH
#define FW_CAPABILITY_HH

#include <cstdint>
#include <string>

#include "mem/memmap.hh"
#include "sim/types.hh"

namespace siopmp {
namespace fw {

/** Entities that can own capabilities. */
using OwnerId = std::uint32_t;

inline constexpr OwnerId kMonitorOwner = 0;

/** Resource category a capability covers. */
enum class CapKind : std::uint8_t {
    Memory,    //!< physical address range
    Device,    //!< a DMA master (by device id)
    Interrupt, //!< an interrupt line
};

/** Rights carried by a capability. */
enum class CapRights : std::uint8_t {
    None = 0x0,
    Read = 0x1,
    Write = 0x2,
    Map = 0x4,   //!< may be bound to a device / address space
    Grant = 0x8, //!< may be derived/transferred further
    Full = 0xf,
};

constexpr CapRights
operator&(CapRights a, CapRights b)
{
    return static_cast<CapRights>(static_cast<std::uint8_t>(a) &
                                  static_cast<std::uint8_t>(b));
}

constexpr CapRights
operator|(CapRights a, CapRights b)
{
    return static_cast<CapRights>(static_cast<std::uint8_t>(a) |
                                  static_cast<std::uint8_t>(b));
}

constexpr bool
hasRights(CapRights have, CapRights need)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(need)) ==
           static_cast<std::uint8_t>(need);
}

/** Handle into the capability space. */
using CapId = std::uint64_t;
inline constexpr CapId kNoCap = 0;

/** One capability record. */
struct Capability {
    CapId id = kNoCap;
    CapId parent = kNoCap;  //!< ownership-chain link
    CapKind kind = CapKind::Memory;
    CapRights rights = CapRights::None;
    OwnerId owner = kMonitorOwner;
    bool revoked = false;

    // Kind-specific payload.
    mem::Range range;       //!< Memory
    DeviceId device = 0;    //!< Device
    unsigned irq_line = 0;  //!< Interrupt

    std::string toString() const;
};

} // namespace fw
} // namespace siopmp

#endif // FW_CAPABILITY_HH
