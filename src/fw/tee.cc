/**
 * @file
 * Tee is header-only; this file anchors it in the library.
 */

#include "fw/tee.hh"
