/**
 * @file
 * TEE domain record kept by the secure monitor's TEE manager: the
 * owner id used in the capability space plus bookkeeping of the
 * resources (memory ranges, devices) currently bound to the domain.
 */

#ifndef FW_TEE_HH
#define FW_TEE_HH

#include <string>
#include <vector>

#include "fw/capability.hh"

namespace siopmp {
namespace fw {

/** One mapped device window inside a TEE. */
struct DeviceMapping {
    DeviceId device = 0;
    Sid sid = kNoSid;
    unsigned entry_index = 0; //!< hardware IOPMP entry holding the rule
    mem::Range range;
    Perm perm = Perm::None;
};

class Tee
{
  public:
    Tee(OwnerId owner, std::string name)
        : owner_(owner), name_(std::move(name))
    {
    }

    OwnerId owner() const { return owner_; }
    const std::string &name() const { return name_; }

    void addMemoryCap(CapId cap) { memory_caps_.push_back(cap); }
    void addDeviceCap(CapId cap) { device_caps_.push_back(cap); }

    const std::vector<CapId> &memoryCaps() const { return memory_caps_; }
    const std::vector<CapId> &deviceCaps() const { return device_caps_; }

    std::vector<DeviceMapping> &mappings() { return mappings_; }
    const std::vector<DeviceMapping> &mappings() const { return mappings_; }

  private:
    OwnerId owner_;
    std::string name_;
    std::vector<CapId> memory_caps_;
    std::vector<CapId> device_caps_;
    std::vector<DeviceMapping> mappings_;
};

} // namespace fw
} // namespace siopmp

#endif // FW_TEE_HH
