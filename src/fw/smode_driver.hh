/**
 * @file
 * S-mode DMA driver: the kernel-side counterpart of the monitor's
 * entry delegation (§6.3). The monitor hands the untrusted kernel a
 * window of low-priority IOPMP entries; this driver implements the
 * Linux-style dma_map/dma_unmap API on top of it:
 *
 *  - dmaMap(): claim a free delegated slot and program a byte-granular
 *    rule for the buffer (synchronous, ~14 cycles);
 *  - dmaUnmap(): reset the slot immediately — no asynchronous
 *    invalidation, no attack window;
 *
 * all while the monitor's high-priority entries keep dominating, so a
 * buggy or malicious kernel can grant at most what the monitor's rules
 * leave reachable.
 */

#ifndef FW_SMODE_DRIVER_HH
#define FW_SMODE_DRIVER_HH

#include <cstdint>
#include <vector>

#include "fw/monitor.hh"

namespace siopmp {
namespace fw {

/** Opaque mapping handle returned by dmaMap(). */
struct SmodeMapping {
    bool ok = false;
    unsigned slot = 0; //!< delegated entry index
    Cycle cost = 0;
};

class SmodeDmaDriver
{
  public:
    /**
     * @param monitor the secure monitor (owns the delegation)
     * @param lo,hi   the delegated entry window [lo, hi)
     */
    SmodeDmaDriver(SecureMonitor *monitor, unsigned lo, unsigned hi);

    /** Map [base, base+size) for DMA with @p perm. */
    SmodeMapping dmaMap(Addr base, Addr size, Perm perm, Cycle now = 0);

    /** Unmap a previous mapping (synchronous entry reset). */
    Cycle dmaUnmap(const SmodeMapping &mapping, Cycle now = 0);

    unsigned freeSlots() const;
    std::uint64_t maps() const { return maps_; }
    std::uint64_t unmaps() const { return unmaps_; }
    std::uint64_t mapFailures() const { return map_failures_; }

  private:
    SecureMonitor *monitor_;
    unsigned lo_;
    std::vector<bool> used_;
    unsigned hand_ = 0; //!< rotating scan start (spreads slot reuse)
    std::uint64_t maps_ = 0;
    std::uint64_t unmaps_ = 0;
    std::uint64_t map_failures_ = 0;
};

} // namespace fw
} // namespace siopmp

#endif // FW_SMODE_DRIVER_HH
