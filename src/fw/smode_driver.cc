/**
 * @file
 * SmodeDmaDriver implementation.
 */

#include "fw/smode_driver.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace fw {

SmodeDmaDriver::SmodeDmaDriver(SecureMonitor *monitor, unsigned lo,
                               unsigned hi)
    : monitor_(monitor), lo_(lo), used_(hi > lo ? hi - lo : 0, false)
{
    SIOPMP_ASSERT(monitor_ && hi > lo, "bad delegation window");
    monitor_->delegateToSmode(lo, hi);
}

SmodeMapping
SmodeDmaDriver::dmaMap(Addr base, Addr size, Perm perm, Cycle now)
{
    SmodeMapping mapping;
    for (unsigned i = 0; i < used_.size(); ++i) {
        const unsigned idx = (hand_ + i) % used_.size();
        if (used_[idx])
            continue;
        auto result = monitor_->smodeSetEntry(
            lo_ + idx, iopmp::Entry::range(base, size, perm), now);
        if (!result.ok) {
            ++map_failures_;
            return mapping;
        }
        used_[idx] = true;
        hand_ = (idx + 1) % static_cast<unsigned>(used_.size());
        mapping.ok = true;
        mapping.slot = lo_ + idx;
        mapping.cost = result.cost;
        ++maps_;
        return mapping;
    }
    ++map_failures_; // window exhausted
    return mapping;
}

Cycle
SmodeDmaDriver::dmaUnmap(const SmodeMapping &mapping, Cycle now)
{
    if (!mapping.ok || mapping.slot < lo_ ||
        mapping.slot >= lo_ + used_.size()) {
        return 0;
    }
    const unsigned idx = mapping.slot - lo_;
    if (!used_[idx])
        return 0;
    auto result =
        monitor_->smodeSetEntry(mapping.slot, iopmp::Entry::off(), now);
    SIOPMP_ASSERT(result.ok, "delegated entry reset failed");
    used_[idx] = false;
    ++unmaps_;
    return result.cost;
}

unsigned
SmodeDmaDriver::freeSlots() const
{
    unsigned free_count = 0;
    for (bool used : used_)
        free_count += !used;
    return free_count;
}

} // namespace fw
} // namespace siopmp
