/**
 * @file
 * SecureMonitor implementation.
 */

#include "fw/monitor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace siopmp {
namespace fw {

using iopmp::regmap::kBlockBitmap;
using iopmp::regmap::kCamBase;
using iopmp::regmap::kEntryBase;
using iopmp::regmap::kEntryStride;
using iopmp::regmap::kErrAddr;
using iopmp::regmap::kErrDevice;
using iopmp::regmap::kErrInfo;
using iopmp::regmap::kEsid;
using iopmp::regmap::kMdCfgBase;
using iopmp::regmap::kSrc2MdBase;

SecureMonitor::SecureMonitor(iopmp::SIopmp *unit, mem::MmioBus *mmio,
                             Addr mmio_base,
                             iopmp::ExtendedTable *ext_table,
                             bus::BusMonitor *bus_monitor,
                             MonitorConfig cfg)
    : unit_(unit),
      mmio_(mmio),
      mmio_base_(mmio_base),
      ext_table_(ext_table),
      bus_monitor_(bus_monitor),
      cfg_(cfg)
{
    SIOPMP_ASSERT(unit_ && mmio_, "monitor needs hardware handles");
    entry_used_.assign(unit_->config().num_entries, false);

    st_cold_switch_cycles_ = &stats_.distribution("cold_switch_cycles");
    st_promotions_ = &stats_.scalar("promotions");
    st_demotions_ = &stats_.scalar("demotions");
    st_cam_evictions_ = &stats_.scalar("cam_evictions");
    st_evict_save_failures_ = &stats_.scalar("evict_save_failures");
    st_demote_save_failures_ = &stats_.scalar("demote_save_failures");
    st_mounted_cold_flushes_ = &stats_.scalar("mounted_cold_flushes");

    unit_->setIrqHandler(
        [this](const iopmp::Irq &irq) { irq_ctrl_.raise(irq); });
    irq_ctrl_.setHandler(iopmp::IrqKind::Violation,
                         [this](const iopmp::Irq &irq, Cycle now) {
                             return handleViolation(irq, now);
                         });
    irq_ctrl_.setHandler(iopmp::IrqKind::SidMissing,
                         [this](const iopmp::Irq &irq, Cycle now) {
                             return handleSidMissing(irq, now);
                         });
}

Cycle
SecureMonitor::mmioWrite(Addr offset, std::uint64_t value)
{
    auto result = mmio_->write(mmio_base_ + offset, value);
    SIOPMP_ASSERT(result.ok, "monitor MMIO write failed");
    return result.cost;
}

Cycle
SecureMonitor::mmioRead(Addr offset, std::uint64_t *value)
{
    auto result = mmio_->read(mmio_base_ + offset);
    SIOPMP_ASSERT(result.ok, "monitor MMIO read failed");
    if (value)
        *value = result.value;
    return result.cost;
}

std::pair<unsigned, unsigned>
SecureMonitor::mdWindow(Sid sid) const
{
    const auto &iopmp_cfg = unit_->config();
    const unsigned hot_mds = iopmp_cfg.num_mds - 1; // MD62 is cold
    if (sid < hot_mds) {
        const unsigned lo = sid * cfg_.entries_per_hot_md;
        return {lo, lo + cfg_.entries_per_hot_md};
    }
    // Cold window (MD62).
    const unsigned lo = hot_mds * cfg_.entries_per_hot_md;
    return {lo, lo + cfg_.cold_window_entries};
}

void
SecureMonitor::init(mem::Range dram, mem::Range protected_region)
{
    const auto &iopmp_cfg = unit_->config();
    const unsigned hot_mds = iopmp_cfg.num_mds - 1;
    SIOPMP_ASSERT(hot_mds * cfg_.entries_per_hot_md +
                          cfg_.cold_window_entries <=
                      iopmp_cfg.num_entries,
                  "entry table too small for the MD partition");

    // Program MDCFG: MD m owns entries [m*E, (m+1)*E); MD62 owns the
    // cold window. SIDs pair 1:1 with MDs.
    unsigned top = 0;
    for (MdIndex md = 0; md < iopmp_cfg.num_mds; ++md) {
        top += md < hot_mds ? cfg_.entries_per_hot_md
                            : cfg_.cold_window_entries;
        mmioWrite(kMdCfgBase + md * 8, top);
    }
    for (Sid sid = 0; sid < hot_mds; ++sid)
        mmioWrite(kSrc2MdBase + sid * 8, std::uint64_t{1} << sid);
    // Cold SID (last row) pairs with the cold MD.
    mmioWrite(kSrc2MdBase + unit_->coldSid() * 8,
              std::uint64_t{1} << (iopmp_cfg.num_mds - 1));

    // Protect the extended table region from S/U-mode CPU access.
    pmp_.set(0, protected_region.base, protected_region.size,
             /*r=*/false, /*w=*/false, /*x=*/false, /*lock=*/false);

    dram_root_ = caps_.mintMemory(dram);
}

CapId
SecureMonitor::registerDevice(DeviceId device)
{
    auto it = device_roots_.find(device);
    if (it != device_roots_.end())
        return it->second;
    const CapId cap = caps_.mintDevice(device);
    device_roots_.emplace(device, cap);
    return cap;
}

OwnerId
SecureMonitor::createTee(const std::string &name, mem::Range memory,
                         const std::vector<CapId> &devices)
{
    const OwnerId owner = next_owner_++;
    auto tee = std::make_unique<Tee>(owner, name);

    // Derive the TEE's memory from the DRAM root and hand it over.
    const CapId mem_cap =
        caps_.deriveMemory(dram_root_, memory, CapRights::Full);
    if (mem_cap == kNoCap)
        return 0;
    caps_.transfer(mem_cap, kMonitorOwner, owner);
    tee->addMemoryCap(mem_cap);

    for (CapId device_cap : devices) {
        if (!caps_.transfer(device_cap, kMonitorOwner, owner))
            return 0;
        tee->addDeviceCap(device_cap);
    }

    tees_.emplace(owner, std::move(tee));
    return owner;
}

Tee *
SecureMonitor::tee(OwnerId owner)
{
    auto it = tees_.find(owner);
    return it == tees_.end() ? nullptr : it->second.get();
}

FwResult
SecureMonitor::destroyTee(OwnerId owner, Cycle now)
{
    FwResult result;
    auto it = tees_.find(owner);
    if (it == tees_.end())
        return result;
    Tee &domain = *it->second;

    // Remove every live mapping (atomic per entry).
    while (!domain.mappings().empty()) {
        const DeviceMapping mapping = domain.mappings().back();
        const FwResult unmapped =
            deviceUnmap(owner, mapping.device, mapping.entry_index, now);
        SIOPMP_ASSERT(unmapped.ok, "teardown unmap failed");
        result.cost += unmapped.cost;
    }

    // Flush every trace of the TEE's devices out of the hardware and
    // the extended table: a destroyed domain's rules must never
    // service another DMA — not even one already in flight. Unlike
    // demoteToCold there is nothing to preserve, so the flushes cannot
    // fail on a full extended table.
    for (CapId cap_id : domain.deviceCaps()) {
        auto cap = caps_.get(cap_id);
        if (!cap)
            continue;
        if (auto sid = hotSid(cap->device))
            result.cost += evictHot(cap->device, *sid);
        if (unit_->mountedCold() == cap->device)
            result.cost += flushMountedCold(cap->device);
        if (ext_table_)
            ext_table_->remove(cap->device);
        miss_counts_.erase(cap->device);
    }

    // Revoke everything the TEE held (cascades down the chain).
    for (CapId cap_id : domain.memoryCaps())
        caps_.revoke(cap_id);
    for (CapId cap_id : domain.deviceCaps())
        caps_.revoke(cap_id);

    tees_.erase(it);
    result.ok = true;
    return result;
}

Cycle
SecureMonitor::writeEntry(unsigned index, const iopmp::Entry &entry)
{
    const Addr base = kEntryBase + index * kEntryStride;
    Cycle cost = 0;
    cost += mmioWrite(base + 0, entry.base());
    cost += mmioWrite(base + 8, entry.size());
    std::uint64_t cfg_word = static_cast<std::uint64_t>(entry.perm()) |
                             (static_cast<std::uint64_t>(entry.mode()) << 2);
    cost += mmioWrite(base + 16, cfg_word);
    return cost + cfg_.entry_sw_overhead;
}

Cycle
SecureMonitor::blockSid(Sid sid, DeviceId device)
{
    // The block bitmap is windowed: word sid/64 carries bit sid%64
    // (paper-scale configs have more than 64 SIDs).
    const unsigned word = sid / 64;
    Cycle cost =
        mmioWrite(kBlockBitmap + word * 8,
                  unit_->blockBitmap().word(word) |
                      (std::uint64_t{1} << (sid % 64)));
    // Wait for the checker pipeline and bus to drain this device's
    // transactions. With a live bus monitor we poll it; the polling
    // and bookkeeping cost is the configured overhead.
    if (bus_monitor_) {
        // In this functional call context the fabric cannot make
        // progress, so in-flight transactions are accounted by the
        // caller; the quiesce state is still validated.
        (void)bus_monitor_->quiesced(device);
    }
    cost += cfg_.block_overhead;
    return cost;
}

Cycle
SecureMonitor::unblockSid(Sid sid)
{
    const unsigned word = sid / 64;
    return mmioWrite(kBlockBitmap + word * 8,
                     unit_->blockBitmap().word(word) &
                         ~(std::uint64_t{1} << (sid % 64)));
}

FwResult
SecureMonitor::deviceMap(OwnerId owner, DeviceId device, mem::Range range,
                         Perm perm, Cycle now)
{
    FwResult result;
    Tee *domain = tee(owner);
    if (!domain)
        return result;

    // Ownership-chain validation: the TEE must own the device and a
    // memory capability covering the range, both with Map rights.
    if (!caps_.findDeviceCap(owner, device))
        return result;
    if (!caps_.findMemoryCap(owner, range.base, range.size,
                             CapRights::Map)) {
        return result;
    }

    // The device must be hot to get a private MD window.
    auto sid = hotSid(device);
    if (!sid) {
        const FwResult promoted = promoteToHot(device, now);
        if (!promoted.ok)
            return result;
        result.cost += promoted.cost;
        sid = hotSid(device);
    }

    // Find a free entry in the SID's window.
    auto [lo, hi] = mdWindow(*sid);
    unsigned index = hi;
    for (unsigned i = lo; i < hi; ++i) {
        if (!entry_used_[i]) {
            index = i;
            break;
        }
    }
    if (index == hi)
        return result; // window full

    // Atomic install under the per-SID block.
    result.cost += blockSid(*sid, device);
    result.cost += writeEntry(index,
                              iopmp::Entry::range(range.base, range.size,
                                                  perm));
    result.cost += unblockSid(*sid);

    entry_used_[index] = true;
    domain->mappings().push_back(
        DeviceMapping{device, *sid, index, range, perm});
    result.ok = true;
    result.entry_index = index;
    return result;
}

FwResult
SecureMonitor::deviceUnmap(OwnerId owner, DeviceId device,
                           unsigned entry_index, Cycle now)
{
    (void)now;
    FwResult result;
    Tee *domain = tee(owner);
    if (!domain)
        return result;

    auto &mappings = domain->mappings();
    auto it = std::find_if(mappings.begin(), mappings.end(),
                           [&](const DeviceMapping &m) {
                               return m.device == device &&
                                      m.entry_index == entry_index;
                           });
    if (it == mappings.end())
        return result;

    // The mapping's recorded SID/entry are a snapshot from map time:
    // the device may since have been evicted to the extended table,
    // remounted cold, or re-promoted into a different CAM row.
    // Resolve the rule's *current* home before touching hardware —
    // blindly reusing the snapshot would block the wrong SID and
    // write off another tenant's entry.
    if (auto sid = hotSid(device)) {
        auto [lo, hi] = mdWindow(*sid);
        unsigned index = hi;
        for (unsigned i = lo; i < hi; ++i) {
            if (!entry_used_[i])
                continue;
            const iopmp::Entry &entry = unit_->entryTable().get(i);
            if (entry.base() == it->range.base &&
                entry.size() == it->range.size &&
                entry.perm() == it->perm) {
                index = i;
                break;
            }
        }
        if (index < hi) {
            result.cost += blockSid(*sid, device);
            result.cost += writeEntry(index, iopmp::Entry::off());
            result.cost += unblockSid(*sid);
            entry_used_[index] = false;
        }
    } else if (ext_table_) {
        // Evicted (or never-promoted) device: edit its extended-table
        // record instead, and rewrite MD62's window if that record is
        // currently mounted through the eSID slot.
        unsigned loads = 0;
        if (auto record = ext_table_->find(device, &loads)) {
            result.cost += loads * cfg_.ext_load_cost;
            auto &entries = record->entries;
            auto match = std::find_if(
                entries.begin(), entries.end(),
                [&](const iopmp::Entry &entry) {
                    return entry.base() == it->range.base &&
                           entry.size() == it->range.size &&
                           entry.perm() == it->perm;
                });
            if (match != entries.end())
                entries.erase(match);
            ext_table_->add(*record); // replace path: reuses the slot
            if (unit_->mountedCold() == device)
                result.cost += remountCold(*record);
        }
    }

    mappings.erase(it);
    result.ok = true;
    result.entry_index = entry_index;
    return result;
}

FwResult
SecureMonitor::deviceMapSg(OwnerId owner, DeviceId device,
                           const std::vector<mem::Range> &segments,
                           Perm perm, Cycle now)
{
    FwResult result;
    Tee *domain = tee(owner);
    if (!domain || segments.empty())
        return result;
    if (!caps_.findDeviceCap(owner, device))
        return result;
    for (const auto &segment : segments) {
        if (!caps_.findMemoryCap(owner, segment.base, segment.size,
                                 CapRights::Map)) {
            return result;
        }
    }

    auto sid = hotSid(device);
    if (!sid) {
        const FwResult promoted = promoteToHot(device, now);
        if (!promoted.ok)
            return result;
        result.cost += promoted.cost;
        sid = hotSid(device);
    }

    // All segments must fit in the device's window.
    auto [lo, hi] = mdWindow(*sid);
    std::vector<unsigned> free_slots;
    for (unsigned i = lo; i < hi && free_slots.size() < segments.size();
         ++i) {
        if (!entry_used_[i])
            free_slots.push_back(i);
    }
    if (free_slots.size() < segments.size())
        return result;

    // One blocking bracket for the whole list: atomic publication.
    result.cost += blockSid(*sid, device);
    for (std::size_t s = 0; s < segments.size(); ++s) {
        result.cost += writeEntry(
            free_slots[s], iopmp::Entry::range(segments[s].base,
                                               segments[s].size, perm));
        entry_used_[free_slots[s]] = true;
        domain->mappings().push_back(DeviceMapping{
            device, *sid, free_slots[s], segments[s], perm});
    }
    result.cost += unblockSid(*sid);
    result.ok = true;
    result.entry_index = free_slots.front();
    return result;
}

FwResult
SecureMonitor::modifyEntries(DeviceId device,
                             const std::vector<iopmp::Entry> &entries,
                             bool atomic, Cycle now)
{
    (void)now;
    FwResult result;
    auto sid = hotSid(device);
    if (!sid)
        return result;
    auto [lo, hi] = mdWindow(*sid);
    if (entries.size() > hi - lo)
        return result;

    if (atomic)
        result.cost += blockSid(*sid, device);
    for (unsigned i = 0; i < entries.size(); ++i)
        result.cost += writeEntry(lo + i, entries[i]);
    if (atomic)
        result.cost += unblockSid(*sid);
    result.ok = true;
    return result;
}

bool
SecureMonitor::registerColdDevice(const iopmp::MountRecord &record)
{
    SIOPMP_ASSERT(ext_table_, "no extended table configured");
    return ext_table_->add(record);
}

FwResult
SecureMonitor::promoteToHot(DeviceId device, Cycle now)
{
    (void)now;
    FwResult result;
    if (hotSid(device)) {
        result.ok = true;
        return result;
    }

    // Pick a row via the clock algorithm; evicted occupants demote to
    // the extended table (their rules must be preserved).
    std::optional<DeviceId> evicted;
    const Sid sid = unit_->cam().insertLru(device, &evicted);
    if (evicted) {
        // Save the evicted device's current window to the extended
        // table before the new occupant overwrites it. If the save
        // fails (table full) the promotion is rolled back — losing
        // the victim's rules would make it permanently unmountable.
        auto [lo, hi] = mdWindow(sid);
        iopmp::MountRecord record;
        record.esid = *evicted;
        record.md_bitmap = std::uint64_t{1}
                           << (unit_->config().num_mds - 1);
        for (unsigned i = lo; i < hi; ++i) {
            if (entry_used_[i])
                record.entries.push_back(unit_->entryTable().get(i));
        }
        if (!ext_table_ || !ext_table_->add(record)) {
            unit_->cam().set(sid, *evicted); // undo the row rebind
            ++*st_evict_save_failures_;
            return result;
        }
        // Flush the victim's entries under its block so the new
        // occupant cannot inherit stale rules when its own record
        // fills less of the window.
        result.cost += blockSid(sid, *evicted);
        for (unsigned i = lo; i < hi; ++i) {
            if (entry_used_[i]) {
                result.cost += writeEntry(i, iopmp::Entry::off());
                entry_used_[i] = false;
            }
        }
        result.cost += unblockSid(sid);
        ++*st_cam_evictions_;
        ++result.cost; // bookkeeping marker; loads accounted on mount
    }

    // Program the CAM row over MMIO.
    result.cost += mmioWrite(kCamBase + sid * 8,
                             (std::uint64_t{1} << 63) | device);

    // If the device had a mounted/extended record, install its rules
    // into the window now.
    if (ext_table_) {
        unsigned loads = 0;
        auto record = ext_table_->find(device, &loads);
        result.cost += loads * cfg_.ext_load_cost;
        if (record) {
            auto [lo, hi] = mdWindow(sid);
            unsigned i = lo;
            for (const auto &entry : record->entries) {
                if (i >= hi)
                    break;
                result.cost += writeEntry(i, entry);
                entry_used_[i] = true;
                ++i;
            }
            ext_table_->remove(device);
        }
    }

    // A device promoted out of the eSID slot leaves the slot and
    // MD62's window stale: the cold copy of its rules would outlive
    // the hot ones (a later unmap edits only the hot window). Flush
    // the slot so the CAM row is the rules' single home.
    if (unit_->mountedCold() == device)
        result.cost += flushMountedCold(device);

    miss_counts_.erase(device);
    ++*st_promotions_;
    result.ok = true;
    return result;
}

FwResult
SecureMonitor::demoteToCold(DeviceId device, Cycle now)
{
    (void)now;
    FwResult result;
    auto sid = hotSid(device);
    if (!sid)
        return result;

    // Preserve the device's rules in the extended table *before*
    // touching the hardware: if the table is full the demotion fails
    // cleanly instead of silently dropping the rules (which would
    // leave the device permanently unmountable).
    auto [lo, hi] = mdWindow(*sid);
    iopmp::MountRecord record;
    record.esid = device;
    record.md_bitmap = std::uint64_t{1} << (unit_->config().num_mds - 1);
    for (unsigned i = lo; i < hi; ++i) {
        if (entry_used_[i])
            record.entries.push_back(unit_->entryTable().get(i));
    }
    if (!ext_table_ || !ext_table_->add(record)) {
        ++*st_demote_save_failures_;
        return result;
    }

    result.cost += evictHot(device, *sid);
    // Reset the implicit-promotion counter: a demoted device must
    // re-earn its CAM row with fresh misses, not ride pre-demotion
    // ones straight back in.
    miss_counts_.erase(device);
    ++*st_demotions_;
    result.ok = true;
    return result;
}

Cycle
SecureMonitor::evictHot(DeviceId device, Sid sid)
{
    Cycle cost = blockSid(sid, device);
    auto [lo, hi] = mdWindow(sid);
    for (unsigned i = lo; i < hi; ++i) {
        if (!entry_used_[i])
            continue;
        cost += writeEntry(i, iopmp::Entry::off());
        entry_used_[i] = false;
    }
    cost += mmioWrite(kCamBase + sid * 8, 0); // invalidate the row
    cost += unblockSid(sid);
    return cost;
}

Cycle
SecureMonitor::flushMountedCold(DeviceId device)
{
    const Sid cold_sid = unit_->coldSid();
    const bool was_blocked = unit_->blockBitmap().blocked(cold_sid);
    Cycle cost = 0;
    if (!was_blocked)
        cost += blockSid(cold_sid, device);
    auto [lo, hi] = mdWindow(cold_sid);
    for (unsigned i = lo; i < hi; ++i)
        cost += writeEntry(i, iopmp::Entry::off());
    cost += mmioWrite(kEsid, 0);
    if (!was_blocked)
        cost += unblockSid(cold_sid);
    ++*st_mounted_cold_flushes_;
    return cost;
}

Cycle
SecureMonitor::remountCold(const iopmp::MountRecord &record)
{
    const Sid cold_sid = unit_->coldSid();
    const bool was_blocked = unit_->blockBitmap().blocked(cold_sid);
    Cycle cost = 0;
    if (!was_blocked)
        cost += blockSid(cold_sid, record.esid);
    auto [lo, hi] = mdWindow(cold_sid);
    unsigned i = lo;
    for (const auto &entry : record.entries) {
        if (i >= hi)
            break;
        cost += writeEntry(i, entry);
        ++i;
    }
    for (; i < hi; ++i)
        cost += writeEntry(i, iopmp::Entry::off());
    if (!was_blocked)
        cost += unblockSid(cold_sid);
    return cost;
}

Cycle
SecureMonitor::coldSwitch(DeviceId device, Cycle now)
{
    (void)now;
    SIOPMP_ASSERT(ext_table_, "cold switch without extended table");
    Cycle cost = 0;

    unsigned loads = 0;
    auto record = ext_table_->find(device, &loads);
    cost += loads * cfg_.ext_load_cost;
    if (!record)
        return cost; // unknown device: leave it blocked forever

    const Sid cold_sid = unit_->coldSid();
    auto [lo, hi] = mdWindow(cold_sid);

    // Evict the previously mounted cold device (flush MD62's window).
    if (auto previous = unit_->mountedCold())
        ++cold_switches_;

    // Install the record: entries into MD62's window, then the eSID
    // register and the cold SRC2MD row.
    unsigned i = lo;
    for (const auto &entry : record->entries) {
        if (i >= hi)
            break;
        cost += writeEntry(i, entry);
        ++i;
    }
    for (; i < hi; ++i)
        cost += writeEntry(i, iopmp::Entry::off()); // flush remainder

    cost += mmioWrite(kEsid, (std::uint64_t{1} << 63) | device);
    cost += mmioWrite(kSrc2MdBase + cold_sid * 8,
                      std::uint64_t{1} << (unit_->config().num_mds - 1));
    cost += cfg_.cold_switch_overhead;

    // Implicit switching: a device that keeps cold-missing becomes a
    // promotion candidate.
    if (++miss_counts_[device] >= cfg_.promote_threshold) {
        const FwResult promoted = promoteToHot(device, now);
        cost += promoted.cost;
    }
    st_cold_switch_cycles_->sample(static_cast<double>(cost));
    return cost;
}

Cycle
SecureMonitor::handleViolation(const iopmp::Irq &irq, Cycle now)
{
    (void)irq;
    (void)now;
    Cycle cost = 0;
    std::uint64_t addr = 0, device = 0, info = 0;
    cost += mmioRead(kErrAddr, &addr);
    cost += mmioRead(kErrDevice, &device);
    cost += mmioRead(kErrInfo, &info);
    cost += mmioWrite(kErrInfo, 0); // acknowledge
    ++violations_;
    Logger::trace(TraceFlag::Monitor,
                  "violation: dev=%llu addr=%#llx perm=%llu",
                  static_cast<unsigned long long>(device),
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(info & 0x3));
    return cost;
}

Cycle
SecureMonitor::handleSidMissing(const iopmp::Irq &irq, Cycle now)
{
    return coldSwitch(irq.device, now);
}

Cycle
SecureMonitor::serviceInterrupts(Cycle now)
{
    return irq_ctrl_.service(now);
}

void
SecureMonitor::delegateToSmode(unsigned lo, unsigned hi)
{
    smode_lo_ = lo;
    smode_hi_ = hi;
}

FwResult
SecureMonitor::smodeSetEntry(unsigned index, const iopmp::Entry &entry,
                             Cycle now)
{
    (void)now;
    FwResult result;
    if (index < smode_lo_ || index >= smode_hi_)
        return result; // outside the delegated window: rejected
    result.cost = writeEntry(index, entry);
    result.ok = true;
    result.entry_index = index;
    return result;
}

std::optional<Sid>
SecureMonitor::hotSid(DeviceId device) const
{
    return unit_->cam().peek(device);
}

} // namespace fw
} // namespace siopmp
