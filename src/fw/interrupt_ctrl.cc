/**
 * @file
 * InterruptController implementation.
 */

#include "fw/interrupt_ctrl.hh"

#include "sim/tickable.hh"

namespace siopmp {
namespace fw {

void
InterruptController::setHandler(iopmp::IrqKind kind, Handler handler)
{
    if (kind == iopmp::IrqKind::Violation)
        violation_handler_ = std::move(handler);
    else
        sid_missing_handler_ = std::move(handler);
}

void
InterruptController::raise(const iopmp::Irq &irq)
{
    queue_.push_back(irq);
    ++raised_;
    if (wake_target_ != nullptr)
        wake_target_->wake();
}

Cycle
InterruptController::service(Cycle now)
{
    Cycle cost = 0;
    while (!queue_.empty()) {
        const iopmp::Irq irq = queue_.front();
        queue_.pop_front();
        cost += trap_cost_;
        const Handler &handler = irq.kind == iopmp::IrqKind::Violation
                                     ? violation_handler_
                                     : sid_missing_handler_;
        if (handler)
            cost += handler(irq, now + cost);
        ++serviced_;
    }
    return cost;
}

} // namespace fw
} // namespace siopmp
