/**
 * @file
 * InterruptController implementation.
 */

#include "fw/interrupt_ctrl.hh"

#include "sim/event_queue.hh"
#include "sim/exec_context.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace fw {

void
InterruptController::setHandler(iopmp::IrqKind kind, Handler handler)
{
    if (kind == iopmp::IrqKind::Violation)
        violation_handler_ = std::move(handler);
    else
        sid_missing_handler_ = std::move(handler);
}

void
InterruptController::setDeliveryLatency(Cycle latency, EventQueue *queue)
{
    delivery_latency_ = latency;
    delivery_queue_ = queue;
}

void
InterruptController::deliver(const iopmp::Irq &irq)
{
    queue_.push_back(irq);
    ++raised_;
    if (wake_target_ != nullptr)
        wake_target_->wake();
}

void
InterruptController::raise(const iopmp::Irq &irq)
{
    if (delivery_latency_ == 0 || delivery_queue_ == nullptr) {
        deliver(irq);
        return;
    }
    const Cycle at = simctx::currentCycle() + delivery_latency_;
    delivery_queue_->schedule(at, [this, irq] { deliver(irq); });
}

Cycle
InterruptController::service(Cycle now)
{
    Cycle cost = 0;
    while (!queue_.empty()) {
        const iopmp::Irq irq = queue_.front();
        queue_.pop_front();
        cost += trap_cost_;
        const Handler &handler = irq.kind == iopmp::IrqKind::Violation
                                     ? violation_handler_
                                     : sid_missing_handler_;
        if (handler)
            cost += handler(irq, now + cost);
        ++serviced_;
    }
    return cost;
}

} // namespace fw
} // namespace siopmp
