/**
 * @file
 * Capability formatting.
 */

#include "fw/capability.hh"

#include <cstdio>

namespace siopmp {
namespace fw {

std::string
Capability::toString() const
{
    char buf[160];
    const char *kind_name = kind == CapKind::Memory   ? "mem"
                            : kind == CapKind::Device ? "dev"
                                                      : "irq";
    std::snprintf(buf, sizeof(buf),
                  "cap#%llu %s owner=%u rights=%#x parent=%llu%s",
                  static_cast<unsigned long long>(id), kind_name, owner,
                  static_cast<unsigned>(rights),
                  static_cast<unsigned long long>(parent),
                  revoked ? " REVOKED" : "");
    return buf;
}

} // namespace fw
} // namespace siopmp
