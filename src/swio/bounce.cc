/**
 * @file
 * BounceBuffer implementation.
 */

#include "swio/bounce.hh"

namespace siopmp {
namespace swio {

Cycle
BounceBuffer::transferCost(std::uint64_t bytes)
{
    ++transfers_;
    bytes_copied_ += bytes;

    Cycle cost = costs_.slot_management;
    cost += static_cast<Cycle>(static_cast<double>(bytes) /
                               costs_.copy_bytes_per_cycle);

    // One hypervisor intervention per batch of packets.
    if (++batch_fill_ >= costs_.batch_size) {
        batch_fill_ = 0;
        cost += costs_.hypervisor_exit;
    }
    return cost;
}

} // namespace swio
} // namespace siopmp
