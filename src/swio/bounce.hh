/**
 * @file
 * SWIO (software I/O) bounce-buffer model: the swiotlb path confidential
 * VMs like SEV-SNP use today. The device can only DMA into shared
 * (unencrypted) memory, so every transfer costs an extra memory copy
 * between the shared bounce buffer and the guest's private memory,
 * plus a hypervisor intervention (world switch) to mediate the I/O.
 * This is the 23-24% throughput loss the paper reports for SWIO.
 */

#ifndef SWIO_BOUNCE_HH
#define SWIO_BOUNCE_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace siopmp {
namespace swio {

struct SwioCosts {
    //! CPU copy throughput between private and shared memory. Far
    //! below peak memcpy: the bounce copy misses in cache on both
    //! sides and contends with the device's own DMA.
    double copy_bytes_per_cycle = 4.0;
    //! Fixed cost of a bounce-buffer slot allocate/free pair.
    Cycle slot_management = 120;
    //! Hypervisor intervention (vmexit + mediation + vmenter),
    //! amortized per I/O batch.
    Cycle hypervisor_exit = 1800;
    //! Packets sharing one hypervisor intervention (NAPI-style batch).
    unsigned batch_size = 16;
};

class BounceBuffer
{
  public:
    explicit BounceBuffer(SwioCosts costs = {}) : costs_(costs) {}

    /**
     * CPU cycle cost to move one packet of @p bytes through the bounce
     * buffer (one copy plus amortized slot + hypervisor costs).
     */
    Cycle transferCost(std::uint64_t bytes);

    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t bytesCopied() const { return bytes_copied_; }
    const SwioCosts &costs() const { return costs_; }

  private:
    SwioCosts costs_;
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_copied_ = 0;
    unsigned batch_fill_ = 0;
};

} // namespace swio
} // namespace siopmp

#endif // SWIO_BOUNCE_HH
