/**
 * @file
 * Crossbar implementation.
 */

#include "bus/xbar.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace siopmp {
namespace bus {

namespace {

/** Span correlation id for a transaction crossing the xbar: the port
 * that issued it disambiguates txn ids across masters. */
std::uint64_t
txnSpanId(std::uint32_t port, std::uint64_t txn)
{
    return (static_cast<std::uint64_t>(port + 1) << 48) ^ txn;
}

} // namespace

Xbar::Xbar(std::string name, std::vector<Link *> uplinks, Link *downlink)
    : Tickable(std::move(name)),
      up_(std::move(uplinks)),
      down_(downlink),
      stats_(this->name())
{
    SIOPMP_ASSERT(!up_.empty() && down_ != nullptr, "xbar needs ports");
    for (auto *link : up_)
        link->a.bindWake(this);
    down_->d.bindWake(this);
}

bool
Xbar::quiescent(Cycle) const
{
    // No beats to forward in either direction. A mid-flight burst lock
    // with empty channels is still a no-op: the lock only matters once
    // the granted master pushes its next beat, which wakes us.
    if (!down_->d.settled())
        return false;
    for (const auto *link : up_) {
        if (!link->a.settled())
            return false;
    }
    return true;
}

void
Xbar::forwardRequest()
{
    if (!down_->a.canPush())
        return;

    if (burst_locked_) {
        // Continue the granted burst; do not interleave other masters.
        Link *link = up_[grant_];
        if (link->a.empty())
            return;
        Beat beat = link->a.front();
        link->a.pop();
        beat.route = static_cast<std::uint32_t>(grant_);
        down_->a.push(beat);
        ++stats_.scalar("a_beats");
        if (beat.last)
            burst_locked_ = false;
        return;
    }

    // Round-robin starting after the last granted port.
    for (std::size_t i = 0; i < up_.size(); ++i) {
        std::size_t port = (grant_ + 1 + i) % up_.size();
        Link *link = up_[port];
        if (link->a.empty())
            continue;
        Beat beat = link->a.front();
        link->a.pop();
        beat.route = static_cast<std::uint32_t>(port);
        down_->a.push(beat);
        ++stats_.scalar("a_beats");
        if (beat.beat_idx == 0 && trace::on())
            traceTxnBegin(beat);
        grant_ = port;
        burst_locked_ = !beat.last;
        return;
    }
}

void
Xbar::traceTxnBegin(const Beat &beat)
{
    trace::Event ev;
    ev.when = now_;
    ev.phase = trace::Phase::SpanBegin;
    ev.track = name().c_str();
    ev.category = "bus";
    ev.name = "txn";
    ev.id = txnSpanId(beat.route, beat.txn);
    ev.device = beat.device;
    ev.addr = beat.addr;
    ev.arg0 = static_cast<std::uint64_t>(beat.opcode);
    ev.arg1 = beat.num_beats;
    ev.label = opcodeName(beat.opcode);
    trace::emit(ev);
}

void
Xbar::traceTxnEnd(const Beat &beat)
{
    trace::Event ev;
    ev.when = now_;
    ev.phase = trace::Phase::SpanEnd;
    ev.track = name().c_str();
    ev.category = "bus";
    ev.name = "txn";
    ev.id = txnSpanId(beat.route, beat.txn);
    ev.device = beat.device;
    ev.addr = beat.addr;
    ev.arg0 = beat.denied ? 1 : 0;
    ev.arg1 = beat.masked ? 1 : 0;
    ev.label = opcodeName(beat.opcode);
    trace::emit(ev);
}

void
Xbar::forwardResponse()
{
    if (down_->d.empty())
        return;
    const Beat &beat = down_->d.front();
    SIOPMP_ASSERT(beat.route < up_.size(), "bad response route tag");
    Link *link = up_[beat.route];
    if (!link->d.canPush())
        return;
    link->d.push(beat);
    ++stats_.scalar("d_beats");
    if (beat.last && trace::on())
        traceTxnEnd(beat);
    down_->d.pop();
}

void
Xbar::evaluate(Cycle now)
{
    now_ = now;
    forwardRequest();
    forwardResponse();
}

void
Xbar::advance(Cycle)
{
    // Consumer-clocks convention: the xbar consumes every uplink's A
    // channel and the downlink's D channel.
    for (auto *link : up_)
        link->a.clock();
    down_->d.clock();
}

} // namespace bus
} // namespace siopmp
