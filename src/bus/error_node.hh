/**
 * @file
 * Dummy error node for the bus-error violation mechanism (§5.2). When
 * the checker detects an IOPMP violation it diverts the offending burst
 * here; the node consumes remaining request beats and emits a single
 * denied response one cycle later, terminating the burst early.
 */

#ifndef BUS_ERROR_NODE_HH
#define BUS_ERROR_NODE_HH

#include <deque>

#include "bus/link.hh"
#include "sim/stats.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace bus {

class ErrorNode : public Tickable
{
  public:
    /** @param up link whose A side feeds violating beats to this node */
    ErrorNode(std::string name, Link *up);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

    std::uint64_t errorsGenerated() const { return errors_; }

  private:
    Link *up_;
    // Writes stream multiple A beats; only the last triggers the ack.
    std::uint64_t errors_ = 0;
    stats::Group stats_;
};

} // namespace bus
} // namespace siopmp

#endif // BUS_ERROR_NODE_HH
