/**
 * @file
 * Registered FIFO used to connect clocked components. Items pushed
 * during a cycle become visible to the consumer only after clock(),
 * which models a register stage and keeps the simulation deterministic
 * regardless of component tick order.
 *
 * Occupancy accounting is also registered: canPush() uses the occupancy
 * snapshot taken at the last clock edge, so a producer cannot observe a
 * pop that happened earlier in the same cycle. This is exactly the
 * behaviour of a ready/valid skid buffer with registered ready.
 *
 * Wake-on-push: the consumer component may bind itself with bindWake();
 * every push() then re-arms it on the simulator's active set, which is
 * what lets a quiescent consumer sleep between transfers without ever
 * missing an incoming beat (see sim/tickable.hh).
 */

#ifndef BUS_FIFO_HH
#define BUS_FIFO_HH

#include <cstddef>
#include <deque>

#include "sim/logging.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace bus {

template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity = 2) : capacity_(capacity)
    {
        SIOPMP_ASSERT(capacity >= 1, "fifo capacity must be >= 1");
    }

    /** True iff a producer may push this cycle. */
    bool
    canPush() const
    {
        return snapshot_ + staged_.size() < capacity_;
    }

    /** Enqueue an item; visible to the consumer after clock(). */
    void
    push(const T &item)
    {
        SIOPMP_ASSERT(canPush(), "push on full fifo");
        staged_.push_back(item);
        if (wake_ != nullptr)
            wake_->wake();
    }

    /** Bind the consumer component woken by every push (may be null to
     * unbind). Survives reset(): it is wiring, not state. */
    void bindWake(Tickable *consumer) { wake_ = consumer; }

    /** True iff the consumer can pop this cycle. */
    bool empty() const { return ready_.empty(); }

    /** Item at the head (consumer-visible). */
    const T &
    front() const
    {
        SIOPMP_ASSERT(!ready_.empty(), "front on empty fifo");
        return ready_.front();
    }

    /** Remove the head item. */
    void
    pop()
    {
        SIOPMP_ASSERT(!ready_.empty(), "pop on empty fifo");
        ready_.pop_front();
    }

    /** Advance the register stage; call once per cycle (by consumer). */
    void
    clock()
    {
        while (!staged_.empty()) {
            ready_.push_back(staged_.front());
            staged_.pop_front();
        }
        snapshot_ = ready_.size();
    }

    /** Total items in flight (ready + staged). */
    std::size_t
    occupancy() const
    {
        return ready_.size() + staged_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** Drop everything (used on reset between experiments). */
    void
    reset()
    {
        ready_.clear();
        staged_.clear();
        snapshot_ = 0;
    }

  private:
    std::size_t capacity_;
    std::deque<T> ready_;
    std::deque<T> staged_;
    std::size_t snapshot_ = 0;
    Tickable *wake_ = nullptr;
};

} // namespace bus
} // namespace siopmp

#endif // BUS_FIFO_HH
