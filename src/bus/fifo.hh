/**
 * @file
 * Registered FIFO used to connect clocked components. Items pushed
 * during a cycle become visible to the consumer only after clock(),
 * which models a register stage and keeps the simulation deterministic
 * regardless of component tick order.
 *
 * Latency: a fifo models a boundary of L >= 1 register stages
 * (constructor parameter). An item pushed at cycle T matures at cycle
 * T + L - 1 — the consumer's clock() at that cycle (or any later one)
 * transfers it to the readable side, so it is poppable from cycle
 * T + L on. L = 1 is the classic staged/ready skid buffer and keeps
 * the exact legacy code path (no timestamps, registered occupancy
 * snapshot). For L >= 2 the occupancy accounting is credit-based and
 * registered in both directions: a pop at cycle P returns its credit
 * to the producer at cycle P + L. Latency-aware paths read the current
 * cycle from simctx::currentCycle() (maintained by the simulator;
 * pinned with simctx::CycleGuard in unit tests).
 *
 * Epoch-committed handoff (parallel engine, sim/domain.hh): when a
 * latency-L fifo crosses a tick-domain boundary under multi-cycle
 * epochs, the scheduler flags it with setEpochCommit(true). The
 * consumer's clock() then never touches the producer-side staging
 * buffer; instead the scheduler's single-threaded main section calls
 * commitEpoch() once per epoch, moving staged items that matured
 * within the epoch directly into the readable side (performing the
 * clock the consumer executed while the item was still invisible) and
 * parking later ones in a consumer-owned in-flight buffer that clock()
 * drains by maturity. Because the epoch length never exceeds the
 * latency of any cross-domain channel, the deferred handoff is
 * invisible: no consumer could have observed the item earlier.
 *
 * Wake-on-push: the consumer component may bind itself with bindWake();
 * every push() then re-arms it on the simulator's active set, which is
 * what lets a quiescent consumer sleep between transfers without ever
 * missing an incoming beat (see sim/tickable.hh).
 */

#ifndef BUS_FIFO_HH
#define BUS_FIFO_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/exec_context.hh"
#include "sim/logging.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace bus {

/**
 * Type-erased base of every Fifo<T>: the channel attributes the
 * parallel engine needs (latency, endpoints, epoch-commit handoff)
 * plus a process-wide registry so the scheduler can derive the epoch
 * length from — and auto-partition over — the registered channels
 * without threading fifo lists through the object graph.
 */
class FifoBase
{
  public:
    FifoBase(std::size_t capacity, Cycle latency)
        : capacity_(capacity), latency_(latency)
    {
        SIOPMP_ASSERT(capacity >= 1, "fifo capacity must be >= 1");
        SIOPMP_ASSERT(latency >= 1, "fifo latency must be >= 1");
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.fifos.push_back(this);
    }

    virtual ~FifoBase()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (auto it = r.fifos.begin(); it != r.fifos.end(); ++it) {
            if (*it == this) {
                r.fifos.erase(it);
                break;
            }
        }
    }

    FifoBase(const FifoBase &) = delete;
    FifoBase &operator=(const FifoBase &) = delete;

    std::size_t capacity() const { return capacity_; }

    /** Register stages between push and consumer visibility. */
    Cycle latency() const { return latency_; }

    /**
     * Annotate the producing component (the pusher). Together with the
     * consumer (bindWake) this attributes the channel in the component
     * graph: the scheduler derives the epoch cap from attributed
     * cross-domain channels and Simulator::autoPartition() walks them.
     * Wiring, not state — survives reset().
     */
    void setProducer(Tickable *producer) { producer_ = producer; }
    Tickable *producer() const { return producer_; }

    /** Annotate the consuming component (the popper/clocker). Falls
     * back to the bindWake target when not set explicitly. */
    void setConsumer(Tickable *consumer) { consumer_ = consumer; }
    Tickable *
    consumer() const
    {
        return consumer_ != nullptr ? consumer_ : wake_;
    }

    /** Bind the consumer component woken by every push (may be null to
     * unbind). Survives reset(): it is wiring, not state. */
    void bindWake(Tickable *consumer) { wake_ = consumer; }

    /** Epoch-committed handoff flag (set by the scheduler only). */
    void setEpochCommit(bool on) { epoch_commit_ = on; }
    bool epochCommit() const { return epoch_commit_; }

    /**
     * Single-threaded epoch-boundary handoff (scheduler main section):
     * move every staged item out of the producer-side buffer — items
     * matured by @p epoch_last directly into the readable side, later
     * ones into the consumer-owned in-flight buffer — and publish the
     * consumer's freed credits to the producer side.
     * @return true iff any item moved (the consumer may need a wake).
     */
    virtual bool commitEpoch(Cycle epoch_last) = 0;

    /** Visit every live fifo in the process (under the registry lock;
     * the callback must not construct or destroy fifos). */
    static void
    forEach(const std::function<void(FifoBase *)> &fn)
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (FifoBase *f : r.fifos)
            fn(f);
    }

  protected:
    std::size_t capacity_;
    Cycle latency_;
    Tickable *wake_ = nullptr;
    Tickable *producer_ = nullptr;
    Tickable *consumer_ = nullptr;
    bool epoch_commit_ = false;

  private:
    struct Registry {
        std::mutex mutex;
        std::vector<FifoBase *> fifos;
    };

    static Registry &
    registry()
    {
        static Registry r;
        return r;
    }
};

template <typename T>
class Fifo : public FifoBase
{
  public:
    explicit Fifo(std::size_t capacity = 2, Cycle latency = 1)
        : FifoBase(capacity, latency), avail_(capacity)
    {
    }

    /** True iff a producer may push this cycle. */
    bool
    canPush() const
    {
        if (latency_ == 1)
            return snapshot_ + staged_.size() < capacity_;
        return avail_ + maturedCredits(simctx::currentCycle()) > 0;
    }

    /** Enqueue an item; visible to the consumer latency() clocks after
     * the push cycle. */
    void
    push(const T &item)
    {
        if (latency_ == 1) {
            SIOPMP_ASSERT(canPush(), "push on full fifo");
            staged_.push_back({item, 0});
        } else {
            const Cycle now = simctx::currentCycle();
            reclaimCredits(now);
            SIOPMP_ASSERT(avail_ > 0, "push on full fifo");
            --avail_;
            staged_.push_back({item, now + latency_ - 1});
        }
        if (wake_ != nullptr)
            wake_->wake();
    }

    /** True iff the consumer can pop this cycle. */
    bool empty() const { return ready_.empty(); }

    /**
     * True iff nothing is readable now or owed to the consumer side:
     * the readable and in-flight buffers are drained (and, outside
     * epoch-committed operation, the staging buffer too). Consumers
     * use this in quiescent() instead of empty() so they stay awake
     * while latency-L items mature; for latency 1 it is equivalent to
     * empty() at every retirement point. Under epoch commit the
     * producer-side staging buffer is intentionally not read (another
     * thread owns it mid-epoch); commitEpoch() re-wakes the consumer
     * when it hands items over.
     */
    bool
    settled() const
    {
        return ready_.empty() && in_flight_.empty() &&
               (epoch_commit_ || staged_.empty());
    }

    /** Item at the head (consumer-visible). */
    const T &
    front() const
    {
        SIOPMP_ASSERT(!ready_.empty(), "front on empty fifo");
        return ready_.front().item;
    }

    /** Remove the head item. */
    void
    pop()
    {
        SIOPMP_ASSERT(!ready_.empty(), "pop on empty fifo");
        ready_.pop_front();
        if (latency_ > 1)
            freed_.push_back(simctx::currentCycle() + latency_);
    }

    /** Advance the register stage; call once per cycle (by consumer). */
    void
    clock()
    {
        if (latency_ == 1) {
            while (!staged_.empty()) {
                ready_.push_back(staged_.front());
                staged_.pop_front();
            }
            snapshot_ = ready_.size();
            return;
        }
        const Cycle now = simctx::currentCycle();
        while (!in_flight_.empty() && in_flight_.front().mature_at <= now) {
            ready_.push_back(in_flight_.front());
            in_flight_.pop_front();
        }
        if (!epoch_commit_) {
            while (!staged_.empty() && staged_.front().mature_at <= now) {
                ready_.push_back(staged_.front());
                staged_.pop_front();
            }
        }
    }

    bool
    commitEpoch(Cycle epoch_last) override
    {
        bool moved = false;
        while (!staged_.empty()) {
            // Matured within the epoch: the consumer's clock at the
            // maturity cycle already ran (or was a retired no-op), so
            // perform that transfer here — it becomes readable exactly
            // when the sequential schedule would have made it so.
            if (staged_.front().mature_at <= epoch_last)
                ready_.push_back(staged_.front());
            else
                in_flight_.push_back(staged_.front());
            staged_.pop_front();
            moved = true;
        }
        while (!freed_.empty()) {
            returns_.push_back(freed_.front());
            freed_.pop_front();
        }
        return moved;
    }

    /** Total items in flight (readable + maturing + staged). */
    std::size_t
    occupancy() const
    {
        return ready_.size() + in_flight_.size() + staged_.size();
    }

    /** Drop everything (used on reset between experiments). */
    void
    reset()
    {
        ready_.clear();
        staged_.clear();
        in_flight_.clear();
        freed_.clear();
        returns_.clear();
        snapshot_ = 0;
        avail_ = capacity_;
    }

  private:
    struct Entry {
        T item;
        Cycle mature_at; //!< first cycle whose clock() may transfer it
    };

    //! Credits whose return has matured by @p now (producer view).
    std::size_t
    maturedCredits(Cycle now) const
    {
        std::size_t n = 0;
        for (Cycle at : returns_) {
            if (at > now)
                break;
            ++n;
        }
        if (!epoch_commit_) {
            for (Cycle at : freed_) {
                if (at > now)
                    break;
                ++n;
            }
        }
        return n;
    }

    void
    reclaimCredits(Cycle now)
    {
        while (!returns_.empty() && returns_.front() <= now) {
            ++avail_;
            returns_.pop_front();
        }
        if (!epoch_commit_) {
            while (!freed_.empty() && freed_.front() <= now) {
                ++avail_;
                freed_.pop_front();
            }
        }
    }

    std::deque<Entry> ready_;     //!< consumer-readable
    std::deque<Entry> staged_;    //!< producer-side register stage
    std::deque<Entry> in_flight_; //!< committed, maturing (consumer-owned)
    std::size_t snapshot_ = 0;    //!< latency-1 registered occupancy
    std::size_t avail_;           //!< latency>=2 producer credits
    std::deque<Cycle> freed_;     //!< credit returns (consumer-written)
    std::deque<Cycle> returns_;   //!< credit returns (producer-visible)
};

} // namespace bus
} // namespace siopmp

#endif // BUS_FIFO_HH
