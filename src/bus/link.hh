/**
 * @file
 * A Link bundles the two channels connecting a master-side component to
 * a slave-side component: the A channel (requests, master -> slave) and
 * the D channel (responses, slave -> master).
 *
 * Clocking convention: the consumer of a channel clocks it. The slave
 * side consumes (and clocks) 'a'; the master side consumes (and clocks)
 * 'd'.
 */

#ifndef BUS_LINK_HH
#define BUS_LINK_HH

#include "bus/fifo.hh"
#include "bus/packet.hh"

namespace siopmp {
namespace bus {

struct Link {
    /**
     * @param depth   per-channel fifo capacity.
     * @param latency register stages per channel (see bus::Fifo). A
     *        latency-L boundary sustains one beat per cycle only when
     *        depth covers the credit round trip (2 * L), so deeper
     *        boundaries should be built with Link(2 * L, L).
     */
    explicit Link(std::size_t depth = 2, Cycle latency = 1)
        : a(depth, latency), d(depth, latency)
    {
    }

    Fifo<Beat> a; //!< requests: master -> slave
    Fifo<Beat> d; //!< responses: slave -> master

    /** Annotate both channel endpoints for the component graph: the
     * master produces 'a' and consumes 'd'; the slave the reverse.
     * Does not bind wakes (components do that themselves). */
    void
    setEndpoints(Tickable *master, Tickable *slave)
    {
        a.setProducer(master);
        a.setConsumer(slave);
        d.setProducer(slave);
        d.setConsumer(master);
    }

    void
    reset()
    {
        a.reset();
        d.reset();
    }
};

} // namespace bus
} // namespace siopmp

#endif // BUS_LINK_HH
