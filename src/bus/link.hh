/**
 * @file
 * A Link bundles the two channels connecting a master-side component to
 * a slave-side component: the A channel (requests, master -> slave) and
 * the D channel (responses, slave -> master).
 *
 * Clocking convention: the consumer of a channel clocks it. The slave
 * side consumes (and clocks) 'a'; the master side consumes (and clocks)
 * 'd'.
 */

#ifndef BUS_LINK_HH
#define BUS_LINK_HH

#include "bus/fifo.hh"
#include "bus/packet.hh"

namespace siopmp {
namespace bus {

struct Link {
    explicit Link(std::size_t depth = 2) : a(depth), d(depth) {}

    Fifo<Beat> a; //!< requests: master -> slave
    Fifo<Beat> d; //!< responses: slave -> master

    void
    reset()
    {
        a.reset();
        d.reset();
    }
};

} // namespace bus
} // namespace siopmp

#endif // BUS_LINK_HH
