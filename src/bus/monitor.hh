/**
 * @file
 * Block-state consistency monitor (§4.1). With a pipelined checker, a
 * DMA transaction may still be in flight inside the checker when
 * software asserts a per-SID block. The monitor tracks in-flight
 * transactions per device so the blocking primitive can wait until the
 * pipeline has drained before reporting the device as quiesced.
 *
 * The monitor also records blocking windows — the contiguous stretch of
 * cycles a device's head-of-line request stalls on its SID block bit —
 * into a histogram, so experiments can quantify how long the §4.1
 * atomic-modification primitive holds traffic (checker nodes report
 * window start/end; see CheckerNode::dispatchRequests).
 */

#ifndef BUS_MONITOR_HH
#define BUS_MONITOR_HH

#include <cstdint>
#include <map>

#include "bus/packet.hh"
#include "sim/exec_context.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace siopmp {
namespace bus {

/**
 * The monitor is shared fabric-wide state: checker nodes in different
 * tick domains report into it. The mutating entry points therefore
 * self-defer to the scheduler's main section when called from a
 * concurrent tick phase (inParallelPhase() guards keep the sequential
 * hot path free of std::function construction); readers (quiesced,
 * inflight...) run from firmware/event context, which is already
 * sequential.
 */
class BusMonitor
{
  public:
    /** Record that a request burst from @p device entered the fabric. */
    void
    onRequestStart(DeviceId device)
    {
        if (simctx::inParallelPhase() &&
            simctx::deferShared([this, device] { startNow(device); }))
            return;
        startNow(device);
    }

    /** Record that the matching response burst fully returned. */
    void
    onResponseEnd(DeviceId device)
    {
        if (simctx::inParallelPhase() &&
            simctx::deferShared([this, device] { endNow(device); }))
            return;
        endNow(device);
    }

    /** True iff no transaction from @p device is anywhere in flight. */
    bool
    quiesced(DeviceId device) const
    {
        auto it = inflight_.find(device);
        return it == inflight_.end() || it->second == 0;
    }

    /** True iff the whole fabric is idle. */
    bool allQuiesced() const { return inflight_.empty(); }

    std::uint64_t inflight(DeviceId device) const
    {
        auto it = inflight_.find(device);
        return it == inflight_.end() ? 0 : it->second;
    }

    std::uint64_t totalStarted() const { return total_started_; }
    std::uint64_t totalCompleted() const { return total_completed_; }

    /**
     * Record a completed blocking window: @p device's head request
     * stalled on its SID block bit for @p cycles before proceeding.
     */
    void
    recordBlockWindow(DeviceId device, Cycle cycles)
    {
        if (simctx::inParallelPhase() &&
            simctx::deferShared(
                [this, device, cycles] { recordWindowNow(device, cycles); }))
            return;
        recordWindowNow(device, cycles);
    }

    /** Completed blocking windows observed so far. */
    std::uint64_t blockWindows() const { return block_windows_; }

    stats::Group &statsGroup() { return stats_; }

    void
    reset()
    {
        inflight_.clear();
        total_started_ = total_completed_ = 0;
        block_windows_ = 0;
        stats_.resetAll();
    }

  private:
    void
    startNow(DeviceId device)
    {
        ++inflight_[device];
        ++total_started_;
    }

    void
    endNow(DeviceId device)
    {
        auto it = inflight_.find(device);
        if (it == inflight_.end() || it->second == 0)
            return; // response for a pre-monitor transaction; ignore
        if (--it->second == 0)
            inflight_.erase(it);
        ++total_completed_;
    }

    void recordWindowNow(DeviceId device, Cycle cycles);

    std::map<DeviceId, std::uint64_t> inflight_;
    std::uint64_t total_started_ = 0;
    std::uint64_t total_completed_ = 0;
    std::uint64_t block_windows_ = 0;
    stats::Group stats_{"busmon"};
};

} // namespace bus
} // namespace siopmp

#endif // BUS_MONITOR_HH
