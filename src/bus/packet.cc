/**
 * @file
 * Beat constructors and debug formatting.
 */

#include "bus/packet.hh"

#include <cstdio>

namespace siopmp {
namespace bus {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Get: return "Get";
      case Opcode::PutFullData: return "PutFullData";
      case Opcode::PutPartialData: return "PutPartialData";
      case Opcode::AccessAck: return "AccessAck";
      case Opcode::AccessAckData: return "AccessAckData";
    }
    return "?";
}

std::string
Beat::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s addr=%#llx dev=%llu txn=%llu beat=%u/%u%s%s%s",
                  opcodeName(opcode),
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(device),
                  static_cast<unsigned long long>(txn),
                  beat_idx, num_beats,
                  last ? " last" : "",
                  denied ? " DENIED" : "",
                  masked ? " MASKED" : "");
    return buf;
}

Beat
makeGet(Addr addr, unsigned beats, DeviceId device, std::uint64_t txn)
{
    Beat b;
    b.opcode = Opcode::Get;
    b.addr = addr;
    b.device = device;
    b.txn = txn;
    b.beat_idx = 0;
    b.num_beats = static_cast<std::uint8_t>(beats);
    b.last = true; // Get is a single A beat
    b.strobe = 0;
    return b;
}

Beat
makePut(Addr addr, unsigned idx, unsigned beats, std::uint64_t data,
        DeviceId device, std::uint64_t txn, std::uint8_t strobe)
{
    Beat b;
    b.opcode =
        strobe == 0xff ? Opcode::PutFullData : Opcode::PutPartialData;
    b.addr = addr + static_cast<Addr>(idx) * kBeatBytes;
    b.device = device;
    b.txn = txn;
    b.beat_idx = static_cast<std::uint8_t>(idx);
    b.num_beats = static_cast<std::uint8_t>(beats);
    b.last = (idx + 1 == beats);
    b.data = data;
    b.strobe = strobe;
    return b;
}

Beat
makeAckData(const Beat &req, unsigned idx, std::uint64_t data)
{
    Beat b;
    b.opcode = Opcode::AccessAckData;
    b.addr = req.addr + static_cast<Addr>(idx) * kBeatBytes;
    b.device = req.device;
    b.txn = req.txn;
    b.route = req.route;
    b.beat_idx = static_cast<std::uint8_t>(idx);
    b.num_beats = req.num_beats;
    b.last = (idx + 1 == req.num_beats);
    b.data = data;
    return b;
}

Beat
makeAck(const Beat &last_req)
{
    Beat b;
    b.opcode = Opcode::AccessAck;
    b.addr = last_req.addr;
    b.device = last_req.device;
    b.txn = last_req.txn;
    b.route = last_req.route;
    b.beat_idx = 0;
    b.num_beats = 1;
    b.last = true;
    return b;
}

Beat
makeDenied(const Beat &req)
{
    Beat b;
    b.opcode = isWrite(req.opcode) ? Opcode::AccessAck
                                   : Opcode::AccessAckData;
    b.addr = req.addr;
    b.device = req.device;
    b.txn = req.txn;
    b.route = req.route;
    b.beat_idx = 0;
    b.num_beats = 1;
    b.last = true;
    b.denied = true;
    return b;
}

} // namespace bus
} // namespace siopmp
