/**
 * @file
 * ErrorNode implementation.
 */

#include "bus/error_node.hh"

#include <utility>

namespace siopmp {
namespace bus {

ErrorNode::ErrorNode(std::string name, Link *up)
    : Tickable(std::move(name)), up_(up), stats_(this->name())
{
    up_->a.bindWake(this);
}

bool
ErrorNode::quiescent(Cycle) const
{
    return up_->a.settled();
}

void
ErrorNode::evaluate(Cycle)
{
    // One beat per cycle: consume request beats; on the last beat of a
    // burst, emit the denied response (single beat, terminates burst).
    if (up_->a.empty())
        return;
    const Beat &req = up_->a.front();
    if (req.last) {
        if (!up_->d.canPush())
            return; // retry next cycle
        up_->d.push(makeDenied(req));
        ++errors_;
        ++stats_.scalar("bus_errors");
    }
    up_->a.pop();
}

void
ErrorNode::advance(Cycle)
{
    up_->a.clock();
}

} // namespace bus
} // namespace siopmp
