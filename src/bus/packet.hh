/**
 * @file
 * Beat-level transaction model for the TileLink-like on-chip bus.
 *
 * A transaction is a burst of beats. Reads (Get) send one request beat
 * on the A channel and receive num_beats data beats on the D channel.
 * Writes (PutFullData / PutPartialData) stream num_beats data beats on
 * the A channel and receive a single AccessAck on D. Each beat carries
 * kBeatBytes of data plus a per-byte write strobe, which is how packet
 * masking suppresses illegal writes.
 */

#ifndef BUS_PACKET_HH
#define BUS_PACKET_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace siopmp {
namespace bus {

/** Bytes moved per beat (data bus width). */
inline constexpr unsigned kBeatBytes = 8;

/** Beats in a standard DMA burst (matches the paper's 8x8B bursts). */
inline constexpr unsigned kBurstBeats = 8;

/** Channel opcodes, a TileLink-UL/UH subset. */
enum class Opcode : std::uint8_t {
    Get,            //!< A: read request (single beat carries whole burst)
    PutFullData,    //!< A: write data beat, full strobe
    PutPartialData, //!< A: write data beat, partial strobe
    AccessAck,      //!< D: write acknowledgement
    AccessAckData,  //!< D: read data beat
};

/** True for A-channel (request) opcodes. */
constexpr bool
isRequest(Opcode op)
{
    return op == Opcode::Get || op == Opcode::PutFullData ||
           op == Opcode::PutPartialData;
}

/** True for opcodes that carry write data. */
constexpr bool
isWrite(Opcode op)
{
    return op == Opcode::PutFullData || op == Opcode::PutPartialData;
}

/** Printable opcode name. */
const char *opcodeName(Opcode op);

/**
 * One flit on the A or D channel.
 */
struct Beat {
    Opcode opcode = Opcode::Get;
    Addr addr = 0;            //!< target address of this beat
    DeviceId device = 0;      //!< originating device identifier
    std::uint64_t txn = 0;    //!< transaction id, unique per master
    std::uint32_t route = 0;  //!< master port index, stamped by the xbar
    std::uint8_t beat_idx = 0;
    std::uint8_t num_beats = 1;
    bool last = true;         //!< final beat of the burst on this channel
    std::uint64_t data = 0;   //!< payload (little-endian bytes)
    std::uint8_t strobe = 0xff; //!< per-byte write enable
    bool denied = false;      //!< response carries a bus error
    bool masked = false;      //!< data was cleared/strobed by the checker

    /** Permission this beat requires from the IOPMP. */
    Perm
    requiredPerm() const
    {
        return isWrite(opcode) ? Perm::Write : Perm::Read;
    }

    /** Debug string. */
    std::string toString() const;
};

/**
 * Construct the single A beat of a read burst covering
 * [addr, addr + beats * kBeatBytes).
 */
Beat makeGet(Addr addr, unsigned beats, DeviceId device, std::uint64_t txn);

/** Construct A beat @p idx of a write burst. */
Beat makePut(Addr addr, unsigned idx, unsigned beats, std::uint64_t data,
             DeviceId device, std::uint64_t txn,
             std::uint8_t strobe = 0xff);

/** Construct D data beat @p idx answering @p req (a Get). */
Beat makeAckData(const Beat &req, unsigned idx, std::uint64_t data);

/** Construct the D ack answering a completed write burst. */
Beat makeAck(const Beat &last_req);

/** Construct an error (denied) response terminating @p req's burst. */
Beat makeDenied(const Beat &req);

} // namespace bus
} // namespace siopmp

#endif // BUS_PACKET_HH
