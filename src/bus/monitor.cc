/**
 * @file
 * BusMonitor out-of-line pieces: blocking-window accounting.
 */

#include "bus/monitor.hh"

namespace siopmp {
namespace bus {

void
BusMonitor::recordWindowNow(DeviceId device, Cycle cycles)
{
    ++block_windows_;
    ++stats_.scalar("block_windows");
    // Shape chosen for pipeline-drain windows: sub-cycle granularity is
    // meaningless, and anything past 128 cycles is pathological.
    stats_.histogram("block_window_cycles", 0.0, 8.0, 16)
        .sample(static_cast<double>(cycles));
    stats_.average("block_window_mean").sample(static_cast<double>(cycles));
    (void)device;
}

} // namespace bus
} // namespace siopmp
