/**
 * @file
 * BusMonitor is header-only; this translation unit exists so the build
 * system has a home for future out-of-line additions and to anchor the
 * vtable-free class in the library.
 */

#include "bus/monitor.hh"
