/**
 * @file
 * N-to-1 crossbar with per-burst round-robin arbitration on the A
 * channel and route-tag-based response steering on the D channel.
 * Models the system front bus that DMA masters share on the way to
 * memory.
 */

#ifndef BUS_XBAR_HH
#define BUS_XBAR_HH

#include <cstdint>
#include <vector>

#include "bus/link.hh"
#include "sim/stats.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace bus {

class Xbar : public Tickable
{
  public:
    /**
     * @param name     component name (stats prefix)
     * @param uplinks  one link per master port (xbar is their slave)
     * @param downlink link toward memory (xbar is its master)
     */
    Xbar(std::string name, std::vector<Link *> uplinks, Link *downlink);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

    stats::Group &statsGroup() { return stats_; }

  private:
    /** Forward at most one A beat; keeps burst beats contiguous. */
    void forwardRequest();

    /** Route at most one D beat back to its master port. */
    void forwardResponse();

    /** Async-span trace events bracketing one bus transaction. */
    void traceTxnBegin(const Beat &beat);
    void traceTxnEnd(const Beat &beat);

    std::vector<Link *> up_;
    Link *down_;
    // A-channel arbitration state: which port holds the bus, and
    // whether a burst is mid-flight (beats must stay contiguous).
    std::size_t grant_ = 0;
    bool burst_locked_ = false;
    Cycle now_ = 0; //!< latched in evaluate() for trace timestamps
    stats::Group stats_;
};

} // namespace bus
} // namespace siopmp

#endif // BUS_XBAR_HH
