/**
 * @file
 * Iommu implementation.
 */

#include "iommu/iommu.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace iommu {

Iommu::Iommu(IommuConfig cfg)
    : cfg_(cfg),
      iova_(cfg.iova_base, cfg.iova_size, cfg.iova),
      iotlb_(cfg.iotlb_sets, cfg.iotlb_ways),
      cmdq_(cfg.cmdq),
      stats_("iommu")
{
}

MapResult
Iommu::dmaMap(Addr paddr, unsigned pages, Perm perm, unsigned cpu,
              unsigned contending_cores, Cycle now)
{
    (void)now;
    MapResult result;
    Cycle iova_cost = 0;
    const Addr iova = iova_.alloc(pages, cpu, contending_cores, &iova_cost);
    if (iova == kNoAddr)
        return result;
    for (unsigned p = 0; p < pages; ++p) {
        const bool ok = table_.map(
            iova + static_cast<Addr>(p) * kPageSize,
            alignDown(paddr, kPageSize) + static_cast<Addr>(p) * kPageSize,
            perm);
        SIOPMP_ASSERT(ok, "page table map failed");
    }
    result.iova = iova;
    result.cost = iova_cost + cfg_.map_setup +
                  pages * cfg_.walk_cycles_per_level / 4;
    ++stats_.scalar("maps");
    stats_.average("map_cost").sample(static_cast<double>(result.cost));
    return result;
}

Cycle
Iommu::dmaUnmap(Addr iova, unsigned pages, unsigned cpu, Cycle now,
                Cycle *wait_out)
{
    Cycle cost = 0;
    Cycle wait = 0;
    for (unsigned p = 0; p < pages; ++p) {
        const Addr page = iova + static_cast<Addr>(p) * kPageSize;
        if (!table_.unmap(page))
            continue;
        if (cfg_.mode == UnmapMode::Strict) {
            // Post invalidation and wait for retirement before reuse.
            cost += cfg_.strict_unmap_cpu;
            cost += cmdq_.post(InvCommand::Page, page, now + cost);
            iotlb_.invalidatePage(page);
        } else {
            // Deferred: mapping is gone from the table but may linger
            // in the IOTLB until the batched flush.
            cost += cfg_.deferred_unmap_cpu;
            ++deferred_pending_;
            ++stale_mappings_;
        }
    }

    if (cfg_.mode == UnmapMode::Strict) {
        wait = cmdq_.sync(now + cost);
        cost += wait;
    } else if (deferred_pending_ >= cfg_.deferred_batch) {
        // Batched global invalidation: one command for the whole batch.
        cost += cmdq_.post(InvCommand::All, 0, now + cost);
        wait = cmdq_.sync(now + cost);
        cost += wait;
        iotlb_.invalidateAll();
        deferred_pending_ = 0;
        stale_mappings_ = 0;
        ++stats_.scalar("deferred_flushes");
    }

    iova_.free(iova, cpu);
    ++stats_.scalar("unmaps");
    stats_.average("unmap_cost").sample(static_cast<double>(cost));
    if (wait_out)
        *wait_out = wait;
    return cost;
}

std::optional<Translation>
Iommu::translate(Addr iova, Perm perm, Cycle now, Cycle *cost_out)
{
    (void)now;
    Cycle cost = 0;
    std::optional<Translation> translation = iotlb_.lookup(iova);
    if (!translation) {
        unsigned levels = 0;
        translation = table_.walk(iova, &levels);
        cost += levels * cfg_.walk_cycles_per_level;
        if (translation)
            iotlb_.insert(iova, *translation);
    }
    if (cost_out)
        *cost_out = cost;
    if (!translation || !permits(translation->perm, perm)) {
        ++stats_.scalar("faults");
        return std::nullopt;
    }
    return translation;
}

} // namespace iommu
} // namespace siopmp
