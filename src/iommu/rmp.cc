/**
 * @file
 * Rmp implementation.
 */

#include "iommu/rmp.hh"

namespace siopmp {
namespace iommu {

void
Rmp::assign(Addr paddr, OwnerTag owner)
{
    owners_[pageOf(paddr)] = owner;
}

Cycle
Rmp::revoke(Addr paddr, Cycle now)
{
    owners_.erase(pageOf(paddr));
    Cycle cost = cmdq_.post(InvCommand::Page, paddr, now);
    cost += cmdq_.sync(now + cost);
    return cost;
}

bool
Rmp::check(Addr paddr, OwnerTag domain) const
{
    ++checks_;
    return ownerOf(paddr) == domain;
}

OwnerTag
Rmp::ownerOf(Addr paddr) const
{
    auto it = owners_.find(pageOf(paddr));
    return it == owners_.end() ? kHypervisorOwner : it->second;
}

} // namespace iommu
} // namespace siopmp
