/**
 * @file
 * Bus-facing IOMMU translation stage. Sits between a DMA master and
 * the rest of the fabric: every request beat's address is an I/O
 * virtual address, translated through the IOTLB/page table before the
 * beat continues downstream (typically into the sIOPMP checker, which
 * then checks the *physical* address — the paper's hybrid deployment
 * where the IOMMU translates and sIOPMP carries the security check).
 *
 * Timing: IOTLB hits add no cycles; misses stall the beat for the
 * table-walk latency. Faults (unmapped IOVA or insufficient page
 * permission) terminate the burst with a denied response, like a real
 * IOMMU raising an unrecoverable fault.
 */

#ifndef IOMMU_IOMMU_NODE_HH
#define IOMMU_IOMMU_NODE_HH

#include <deque>
#include <optional>

#include "bus/link.hh"
#include "iommu/iommu.hh"
#include "sim/stats.hh"
#include "sim/tickable.hh"

namespace siopmp {
namespace iommu {

class IommuNode : public Tickable
{
  public:
    IommuNode(std::string name, bus::Link *up, bus::Link *down,
              Iommu *mmu);

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

    stats::Group &statsGroup() { return stats_; }

  private:
    struct Pending {
        bus::Beat beat;
        Cycle ready_at;
        bool fault;
    };

    void acceptRequests(Cycle now);
    void dispatch(Cycle now);
    void forwardResponses();

    bus::Link *up_;
    bus::Link *down_;
    Iommu *mmu_;
    std::deque<Pending> pipe_;
    //! Divert latch: remaining beats of a faulted write burst.
    std::optional<std::uint64_t> faulting_txn_;
    stats::Group stats_;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_IOMMU_NODE_HH
