/**
 * @file
 * IoPageTable implementation.
 */

#include "iommu/page_table.hh"

namespace siopmp {
namespace iommu {

bool
IoPageTable::map(Addr iova, Addr paddr, Perm perm)
{
    if ((iova | paddr) & (kPageSize - 1))
        return false;
    auto &leaf = l1_[l1Index(iova)];
    if (!leaf)
        leaf = std::make_unique<Leaf>();
    auto [it, inserted] =
        leaf->entries.insert_or_assign(l2Index(iova),
                                       Translation{paddr, perm});
    if (inserted)
        ++count_;
    return true;
}

bool
IoPageTable::unmap(Addr iova)
{
    auto it = l1_.find(l1Index(iova));
    if (it == l1_.end())
        return false;
    if (it->second->entries.erase(l2Index(iova)) == 0)
        return false;
    --count_;
    if (it->second->entries.empty())
        l1_.erase(it);
    return true;
}

std::optional<Translation>
IoPageTable::walk(Addr iova, unsigned *walk_levels) const
{
    auto it = l1_.find(l1Index(iova));
    if (it == l1_.end()) {
        if (walk_levels)
            *walk_levels = 1;
        return std::nullopt;
    }
    if (walk_levels)
        *walk_levels = 2;
    auto leaf_it = it->second->entries.find(l2Index(iova));
    if (leaf_it == it->second->entries.end())
        return std::nullopt;
    return leaf_it->second;
}

} // namespace iommu
} // namespace siopmp
