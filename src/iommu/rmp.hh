/**
 * @file
 * RMP (Reverse Map Table) style page-ownership check, modelling the
 * SEV-SNP / CCA-GPC class of TEE I/O isolation the paper compares
 * against (§2.3, §7). Every physical page has an owner tag; a device
 * access is legal only if the page's owner matches the domain the
 * device is assigned to. Like the IOMMU, entry invalidation goes
 * through an asynchronous command (the RMP lives inside the IOMMU),
 * so dynamic workloads pay the same invalidation tax — which is why
 * TEE-IO alone does not solve the I/O isolation cost.
 */

#ifndef IOMMU_RMP_HH
#define IOMMU_RMP_HH

#include <cstdint>
#include <unordered_map>

#include "iommu/cmd_queue.hh"
#include "iommu/page_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace siopmp {
namespace iommu {

/** Page owner tag (world/realm identifier). */
using OwnerTag = std::uint32_t;

inline constexpr OwnerTag kHypervisorOwner = 0;

class Rmp
{
  public:
    explicit Rmp(CmdQueueCosts cmdq_costs = {}) : cmdq_(cmdq_costs) {}

    /** Assign ownership of a physical page (CPU-side, synchronous). */
    void assign(Addr paddr, OwnerTag owner);

    /**
     * Revoke ownership (page returns to the hypervisor). Like IOTLB
     * invalidation this posts an asynchronous command and waits;
     * returns the CPU cycle cost.
     */
    Cycle revoke(Addr paddr, Cycle now);

    /** Device-side check: may a device of @p domain touch @p paddr? */
    bool check(Addr paddr, OwnerTag domain) const;

    OwnerTag ownerOf(Addr paddr) const;

    const CommandQueue &cmdQueue() const { return cmdq_; }
    std::uint64_t checksPerformed() const { return checks_; }

  private:
    static Addr pageOf(Addr paddr) { return paddr >> kPageShift; }

    std::unordered_map<Addr, OwnerTag> owners_;
    CommandQueue cmdq_;
    mutable std::uint64_t checks_ = 0;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_RMP_HH
