/**
 * @file
 * Set-associative IOTLB for the baseline IOMMU model. The cost the
 * paper attributes to IOMMU-based protection comes from keeping this
 * structure coherent with the page table: strict mode invalidates on
 * every dma_unmap through the asynchronous command queue, deferred
 * mode batches invalidations and leaves a window where stale entries
 * still translate.
 */

#ifndef IOMMU_IOTLB_HH
#define IOMMU_IOTLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "iommu/page_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace siopmp {
namespace iommu {

class Iotlb
{
  public:
    /**
     * @param sets   number of sets (power of two)
     * @param ways   associativity
     */
    Iotlb(unsigned sets, unsigned ways);

    /** Lookup; updates LRU on hit. */
    std::optional<Translation> lookup(Addr iova);

    /** Install a translation (evicts LRU way). */
    void insert(Addr iova, const Translation &translation);

    /** Invalidate one page; returns true if it was present. */
    bool invalidatePage(Addr iova);

    /** Invalidate everything (global invalidation command). */
    void invalidateAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Number of valid entries (tests). */
    unsigned population() const;

  private:
    struct Way {
        bool valid = false;
        Addr vpn = 0;
        Translation translation;
        std::uint64_t lru = 0; //!< last-use stamp
    };

    unsigned setIndex(Addr iova) const
    {
        return static_cast<unsigned>((iova >> kPageShift) & (sets_ - 1));
    }

    unsigned sets_;
    unsigned ways_;
    std::vector<Way> ways_storage_; //!< sets_ * ways_
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_IOTLB_HH
