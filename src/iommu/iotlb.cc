/**
 * @file
 * Iotlb implementation.
 */

#include "iommu/iotlb.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace iommu {

Iotlb::Iotlb(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
{
    SIOPMP_ASSERT(isPow2(sets) && ways >= 1, "bad IOTLB shape");
    ways_storage_.resize(static_cast<std::size_t>(sets) * ways);
}

std::optional<Translation>
Iotlb::lookup(Addr iova)
{
    const Addr vpn = iova >> kPageShift;
    const unsigned set = setIndex(iova);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = ways_storage_[static_cast<std::size_t>(set) * ways_ + w];
        if (way.valid && way.vpn == vpn) {
            way.lru = ++stamp_;
            ++hits_;
            return way.translation;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Iotlb::insert(Addr iova, const Translation &translation)
{
    const Addr vpn = iova >> kPageShift;
    const unsigned set = setIndex(iova);
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = ways_storage_[static_cast<std::size_t>(set) * ways_ + w];
        if (way.valid && way.vpn == vpn) {
            victim = &way; // refresh existing entry
            break;
        }
        if (!way.valid) {
            if (!victim || victim->valid)
                victim = &way;
        } else if (!victim || (victim->valid && way.lru < victim->lru)) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->translation = translation;
    victim->lru = ++stamp_;
}

bool
Iotlb::invalidatePage(Addr iova)
{
    const Addr vpn = iova >> kPageShift;
    const unsigned set = setIndex(iova);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = ways_storage_[static_cast<std::size_t>(set) * ways_ + w];
        if (way.valid && way.vpn == vpn) {
            way.valid = false;
            return true;
        }
    }
    return false;
}

void
Iotlb::invalidateAll()
{
    for (auto &way : ways_storage_)
        way.valid = false;
}

unsigned
Iotlb::population() const
{
    unsigned n = 0;
    for (const auto &way : ways_storage_)
        n += way.valid;
    return n;
}

} // namespace iommu
} // namespace siopmp
