/**
 * @file
 * Asynchronous invalidation command queue. Real IOMMUs invalidate the
 * IOTLB by posting commands (invalidate page / invalidate all / sync)
 * to a ring and waiting for a completion wait-descriptor. The wait is
 * what makes strict unmapping so expensive: the driver cannot reuse
 * the IOVA until the sync retires, and retirement latency is hundreds
 * of cycles and grows under load. sIOPMP's contrast (§6.2) is its
 * synchronous, deterministic MMIO entry rewrite.
 */

#ifndef IOMMU_CMD_QUEUE_HH
#define IOMMU_CMD_QUEUE_HH

#include <cstdint>
#include <deque>

#include "sim/types.hh"

namespace siopmp {
namespace iommu {

struct CmdQueueCosts {
    Cycle post = 40;           //!< write command descriptor + doorbell
    Cycle service_latency = 450; //!< hardware dequeue-to-retire latency
    Cycle service_interval = 120; //!< min gap between retirements
    Cycle sync_poll = 60;      //!< one poll of the wait descriptor
};

/** Command kinds (subset sufficient for the model). */
enum class InvCommand { Page, All, Sync };

class CommandQueue
{
  public:
    explicit CommandQueue(CmdQueueCosts costs = {}) : costs_(costs) {}

    /**
     * Post an invalidation command at time @p now.
     * @return the cycle cost of posting (CPU side).
     */
    Cycle post(InvCommand kind, Addr iova, Cycle now);

    /**
     * Block until every previously posted command has retired
     * (a sync/wait descriptor). @return CPU cycles spent waiting.
     */
    Cycle sync(Cycle now);

    /** Retire commands whose service time has passed. */
    void drain(Cycle now);

    std::size_t pending() const { return pending_.size(); }
    std::uint64_t posted() const { return posted_; }
    std::uint64_t retired() const { return retired_; }

    /** Cycle at which the most recently posted command retires. */
    Cycle lastRetireAt() const { return last_retire_at_; }

  private:
    struct Pending {
        InvCommand kind;
        Addr iova;
        Cycle retire_at;
    };

    CmdQueueCosts costs_;
    std::deque<Pending> pending_;
    Cycle last_retire_at_ = 0;
    std::uint64_t posted_ = 0;
    std::uint64_t retired_ = 0;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_CMD_QUEUE_HH
