/**
 * @file
 * CommandQueue implementation.
 */

#include "iommu/cmd_queue.hh"

#include <algorithm>

namespace siopmp {
namespace iommu {

Cycle
CommandQueue::post(InvCommand kind, Addr iova, Cycle now)
{
    // Hardware services commands in order with a minimum gap; a burst
    // of invalidations queues up behind the service interval.
    const Cycle earliest =
        std::max(now + costs_.service_latency,
                 last_retire_at_ + costs_.service_interval);
    pending_.push_back(Pending{kind, iova, earliest});
    last_retire_at_ = earliest;
    ++posted_;
    return costs_.post;
}

Cycle
CommandQueue::sync(Cycle now)
{
    drain(now);
    if (pending_.empty())
        return costs_.sync_poll; // one poll observes completion
    // Wait for the last command to retire, polling the wait
    // descriptor; the CPU burns the whole interval.
    const Cycle done_at = pending_.back().retire_at;
    const Cycle waited = done_at > now ? done_at - now : 0;
    retired_ += pending_.size();
    pending_.clear();
    return waited + costs_.sync_poll;
}

void
CommandQueue::drain(Cycle now)
{
    while (!pending_.empty() && pending_.front().retire_at <= now) {
        pending_.pop_front();
        ++retired_;
    }
}

} // namespace iommu
} // namespace siopmp
