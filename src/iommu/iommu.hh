/**
 * @file
 * Baseline IOMMU model (Table 1's IOMMU-strict / IOMMU-defer rows).
 * Composes the IOVA allocator, IO page table, IOTLB and the
 * asynchronous invalidation command queue into the dma_map/dma_unmap
 * interface a kernel network stack uses per packet.
 *
 * Unmap modes:
 *  - Strict: every unmap posts a page invalidation and synchronously
 *    waits for it to retire before the IOVA may be reused. Safe but
 *    expensive; this is the 20-38% throughput loss of Fig 15.
 *  - Deferred: unmaps batch; the IOVA is recycled immediately and the
 *    flush happens every N unmaps (or on timeout). Fast but leaves an
 *    attack window during which the device can still touch the stale
 *    mapping — which the model exposes via attackWindowOpen().
 */

#ifndef IOMMU_IOMMU_HH
#define IOMMU_IOMMU_HH

#include <cstdint>

#include "iommu/cmd_queue.hh"
#include "iommu/iotlb.hh"
#include "iommu/iova.hh"
#include "iommu/page_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace siopmp {
namespace iommu {

enum class UnmapMode { Strict, Deferred };

struct IommuConfig {
    Addr iova_base = 0x0010'0000;
    Addr iova_size = Addr{1} << 36;
    unsigned iotlb_sets = 64;
    unsigned iotlb_ways = 4;
    UnmapMode mode = UnmapMode::Strict;
    unsigned deferred_batch = 256; //!< unmaps per deferred flush
    Cycle walk_cycles_per_level = 90; //!< memory access per PT level
    Cycle map_setup = 70;          //!< PTE install + bookkeeping
    //! Driver-side CPU work per strict unmap: invalidation descriptor
    //! setup, per-page IOTLB flush bookkeeping, completion handling.
    Cycle strict_unmap_cpu = 220;
    Cycle deferred_unmap_cpu = 30; //!< queue entry + lazy bookkeeping
    IovaCosts iova;
    CmdQueueCosts cmdq;
};

/** Result of a dma_map call. */
struct MapResult {
    Addr iova = kNoAddr;
    Cycle cost = 0;
};

class Iommu
{
  public:
    explicit Iommu(IommuConfig cfg);

    /**
     * Kernel-side: map @p pages contiguous physical pages starting at
     * @p paddr for device DMA. @p cpu / @p contending_cores model
     * multi-core IOVA contention.
     */
    MapResult dmaMap(Addr paddr, unsigned pages, Perm perm, unsigned cpu,
                     unsigned contending_cores, Cycle now);

    /**
     * Kernel-side: unmap. Returns CPU cycle cost, which in strict mode
     * includes the synchronous invalidation wait. @p wait_out, when
     * non-null, receives the portion spent stalled on the command
     * queue (other cores can overlap useful work with it).
     */
    Cycle dmaUnmap(Addr iova, unsigned pages, unsigned cpu, Cycle now,
                   Cycle *wait_out = nullptr);

    /**
     * Device-side: translate an access. Walks the IOTLB then the page
     * table; returns nullopt on fault. @p cost_out gets device-visible
     * added latency (0 on IOTLB hit).
     */
    std::optional<Translation> translate(Addr iova, Perm perm, Cycle now,
                                         Cycle *cost_out = nullptr);

    /** True while deferred mode has unflushed stale mappings. */
    bool attackWindowOpen() const { return stale_mappings_ > 0; }
    std::uint64_t staleMappings() const { return stale_mappings_; }

    const Iotlb &iotlb() const { return iotlb_; }
    Iotlb &iotlb() { return iotlb_; }
    const CommandQueue &cmdQueue() const { return cmdq_; }
    const IovaAllocator &iova() const { return iova_; }
    const IoPageTable &pageTable() const { return table_; }
    const IommuConfig &config() const { return cfg_; }
    stats::Group &statsGroup() { return stats_; }

  private:
    IommuConfig cfg_;
    IovaAllocator iova_;
    IoPageTable table_;
    Iotlb iotlb_;
    CommandQueue cmdq_;
    unsigned deferred_pending_ = 0;
    std::uint64_t stale_mappings_ = 0;
    stats::Group stats_;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_IOMMU_HH
