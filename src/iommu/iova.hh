/**
 * @file
 * IOVA (I/O virtual address) range allocator. Models the Linux
 * iova_domain: a lock-protected range tree plus per-CPU caches. The
 * scalability cost the paper cites — IOVA allocation contention with
 * multiple cores and devices — is modelled by a per-allocation cycle
 * cost that grows with the number of contending cores when the
 * per-CPU cache misses.
 */

#ifndef IOMMU_IOVA_HH
#define IOMMU_IOVA_HH

#include <cstdint>
#include <map>
#include <vector>

#include "iommu/page_table.hh"
#include "sim/types.hh"

namespace siopmp {
namespace iommu {

struct IovaCosts {
    Cycle cached_alloc = 30;    //!< per-CPU magazine hit
    Cycle tree_alloc = 180;     //!< global tree under the lock
    Cycle contention_per_core = 90; //!< extra serialization per core
};

class IovaAllocator
{
  public:
    /**
     * @param base  first allocatable address (page aligned)
     * @param size  size of the IOVA space
     */
    IovaAllocator(Addr base, Addr size, IovaCosts costs = {});

    /**
     * Allocate @p pages contiguous pages for @p cpu.
     * @param cost_out receives the modeled cycle cost
     * @return base IOVA, or kNoAddr on exhaustion
     */
    Addr alloc(unsigned pages, unsigned cpu, unsigned contending_cores,
               Cycle *cost_out = nullptr);

    /** Free a previous allocation (returns false if unknown). */
    bool free(Addr iova, unsigned cpu);

    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t cacheHits() const { return cache_hits_; }
    std::uint64_t treeAllocs() const { return tree_allocs_; }

  private:
    static constexpr unsigned kMaxCpus = 64;
    static constexpr unsigned kMagazineSize = 32;

    struct Magazine {
        std::vector<Addr> free_iovas; //!< single-page entries only
    };

    IovaCosts costs_;
    Addr base_;
    Addr limit_;
    Addr bump_; //!< simple bump pointer over virgin space
    std::map<Addr, unsigned> live_; //!< iova -> pages
    std::map<Addr, unsigned> tree_free_; //!< recycled ranges
    std::vector<Magazine> magazines_;
    std::uint64_t allocated_ = 0;
    std::uint64_t cache_hits_ = 0;
    std::uint64_t tree_allocs_ = 0;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_IOVA_HH
