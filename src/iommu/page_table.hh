/**
 * @file
 * Two-level I/O page table used by the baseline IOMMU model. Maps
 * 4 KiB I/O virtual pages (IOVA space) to physical pages with R/W
 * permissions. A table walk touches one entry per level; the walk cost
 * in cycles is reported to the IOMMU's timing model.
 */

#ifndef IOMMU_PAGE_TABLE_HH
#define IOMMU_PAGE_TABLE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "sim/types.hh"

namespace siopmp {
namespace iommu {

inline constexpr Addr kPageShift = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageShift;
//! Bits of IOVA covered by one leaf table (second level).
inline constexpr Addr kLevelBits = 9;

/** One translation. */
struct Translation {
    Addr paddr = 0;  //!< physical page base
    Perm perm = Perm::None;
};

class IoPageTable
{
  public:
    /**
     * Install a mapping iova -> paddr (both page-aligned) with the
     * given permission. Returns false if either address is unaligned.
     */
    bool map(Addr iova, Addr paddr, Perm perm);

    /** Remove the mapping for @p iova. Returns false if absent. */
    bool unmap(Addr iova);

    /**
     * Walk the table. @p walk_levels, when non-null, receives the
     * number of table levels touched (2 on a hit or leaf-level miss,
     * 1 when the first level already misses).
     */
    std::optional<Translation> walk(Addr iova,
                                    unsigned *walk_levels = nullptr) const;

    std::size_t numMappings() const { return count_; }

  private:
    struct Leaf {
        std::unordered_map<Addr, Translation> entries; //!< by L2 index
    };

    static Addr l1Index(Addr iova) { return iova >> (kPageShift + kLevelBits); }
    static Addr
    l2Index(Addr iova)
    {
        return (iova >> kPageShift) & ((Addr{1} << kLevelBits) - 1);
    }

    std::unordered_map<Addr, std::unique_ptr<Leaf>> l1_;
    std::size_t count_ = 0;
};

} // namespace iommu
} // namespace siopmp

#endif // IOMMU_PAGE_TABLE_HH
