/**
 * @file
 * IommuNode implementation.
 */

#include "iommu/iommu_node.hh"

#include <utility>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace siopmp {
namespace iommu {

IommuNode::IommuNode(std::string name, bus::Link *up, bus::Link *down,
                     Iommu *mmu)
    : Tickable(std::move(name)), up_(up), down_(down), mmu_(mmu),
      stats_(this->name())
{
    SIOPMP_ASSERT(up_ && down_ && mmu_, "iommu node wiring incomplete");
    up_->a.bindWake(this);
    down_->d.bindWake(this);
}

bool
IommuNode::quiescent(Cycle) const
{
    // Table-walk stalls keep pipe_ non-empty, so the node stays hot
    // (polling) until every in-flight beat has drained downstream.
    return up_->a.settled() && pipe_.empty() && down_->d.settled();
}

void
IommuNode::acceptRequests(Cycle now)
{
    if (up_->a.empty() || pipe_.size() >= 4)
        return;
    bus::Beat beat = up_->a.front();
    up_->a.pop();

    // Burst-wide fault propagation for writes.
    if (faulting_txn_ && *faulting_txn_ == beat.txn &&
        bus::isWrite(beat.opcode)) {
        pipe_.push_back(Pending{beat, now, /*fault=*/true});
        if (beat.last)
            faulting_txn_.reset();
        return;
    }

    Cycle walk_cost = 0;
    const Addr iova = beat.addr;
    auto translation =
        mmu_->translate(beat.addr, beat.requiredPerm(), now, &walk_cost);
    if (walk_cost == 0)
        ++stats_.scalar("iotlb_hits");
    else
        ++stats_.scalar("table_walks");

    if (trace::on()) {
        trace::Event ev;
        ev.when = now;
        ev.track = name().c_str();
        ev.category = "iommu";
        ev.name = "translate";
        ev.device = beat.device;
        ev.addr = iova;
        ev.arg0 = walk_cost;
        ev.arg1 = translation ? translation->paddr : 0;
        ev.label = !translation.has_value() ? "fault"
                   : walk_cost > 0          ? "walk"
                                            : "hit";
        trace::emit(ev);
    }

    Pending pending;
    pending.ready_at = now + walk_cost;
    pending.fault = !translation.has_value();
    if (translation) {
        beat.addr = translation->paddr | (beat.addr & (kPageSize - 1));
    } else {
        ++stats_.scalar("faults");
        if (bus::isWrite(beat.opcode) && !beat.last)
            faulting_txn_ = beat.txn;
    }
    pending.beat = beat;
    pipe_.push_back(pending);
}

void
IommuNode::dispatch(Cycle now)
{
    if (pipe_.empty() || pipe_.front().ready_at > now)
        return;
    const Pending &pending = pipe_.front();

    if (pending.fault) {
        // Respond with a bus error once per burst (on the last beat of
        // writes, immediately for reads).
        if (pending.beat.last) {
            if (!up_->d.canPush())
                return;
            up_->d.push(bus::makeDenied(pending.beat));
        }
        pipe_.pop_front();
        return;
    }

    if (!down_->a.canPush())
        return;
    down_->a.push(pending.beat);
    ++stats_.scalar("beats_translated");
    pipe_.pop_front();
}

void
IommuNode::forwardResponses()
{
    if (down_->d.empty() || !up_->d.canPush())
        return;
    up_->d.push(down_->d.front());
    down_->d.pop();
}

void
IommuNode::evaluate(Cycle now)
{
    acceptRequests(now);
    dispatch(now);
    forwardResponses();
}

void
IommuNode::advance(Cycle)
{
    up_->a.clock();
    down_->d.clock();
}

} // namespace iommu
} // namespace siopmp
