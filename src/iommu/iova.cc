/**
 * @file
 * IovaAllocator implementation.
 */

#include "iommu/iova.hh"

#include "sim/logging.hh"

namespace siopmp {
namespace iommu {

IovaAllocator::IovaAllocator(Addr base, Addr size, IovaCosts costs)
    : costs_(costs),
      base_(base),
      limit_(base + size),
      bump_(base),
      magazines_(kMaxCpus)
{
    SIOPMP_ASSERT((base & (kPageSize - 1)) == 0, "unaligned IOVA base");
}

Addr
IovaAllocator::alloc(unsigned pages, unsigned cpu, unsigned contending_cores,
                     Cycle *cost_out)
{
    SIOPMP_ASSERT(pages >= 1 && cpu < kMaxCpus, "bad alloc request");
    Cycle cost = 0;
    Addr iova = kNoAddr;

    // Fast path: single-page allocations come from the per-CPU
    // magazine without touching the global lock.
    if (pages == 1 && !magazines_[cpu].free_iovas.empty()) {
        iova = magazines_[cpu].free_iovas.back();
        magazines_[cpu].free_iovas.pop_back();
        cost = costs_.cached_alloc;
        ++cache_hits_;
    } else {
        // Global tree under the domain lock: serialized across cores.
        cost = costs_.tree_alloc;
        if (contending_cores > 1)
            cost += (contending_cores - 1) * costs_.contention_per_core;
        ++tree_allocs_;

        // Best-fit over recycled ranges.
        for (auto it = tree_free_.begin(); it != tree_free_.end(); ++it) {
            if (it->second >= pages) {
                iova = it->first;
                const unsigned remaining = it->second - pages;
                tree_free_.erase(it);
                if (remaining > 0) {
                    tree_free_.emplace(
                        iova + static_cast<Addr>(pages) * kPageSize,
                        remaining);
                }
                break;
            }
        }
        if (iova == kNoAddr) {
            // Virgin space.
            const Addr bytes = static_cast<Addr>(pages) * kPageSize;
            if (bump_ + bytes > limit_) {
                if (cost_out)
                    *cost_out = cost;
                return kNoAddr;
            }
            iova = bump_;
            bump_ += bytes;
        }
    }

    live_.emplace(iova, pages);
    ++allocated_;
    if (cost_out)
        *cost_out = cost;
    return iova;
}

bool
IovaAllocator::free(Addr iova, unsigned cpu)
{
    auto it = live_.find(iova);
    if (it == live_.end())
        return false;
    const unsigned pages = it->second;
    live_.erase(it);

    if (pages == 1 &&
        magazines_[cpu].free_iovas.size() < kMagazineSize) {
        magazines_[cpu].free_iovas.push_back(iova);
    } else {
        tree_free_.emplace(iova, pages);
    }
    return true;
}

} // namespace iommu
} // namespace siopmp
