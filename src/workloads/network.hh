/**
 * @file
 * iperf-style network throughput workload (Fig 15). Models a saturated
 * TCP stream as a packet loop: each packet pays a fixed stack cost
 * (checksum, skb handling, driver work, wire pacing at line rate) plus
 * the per-packet cost of the configured I/O protection scheme:
 *
 *  - None:          nothing (the 100% baseline);
 *  - sIOPMP:        synchronous IOPMP entry rewrite on map and unmap
 *                   (measured from the monitor's MMIO accesses);
 *  - sIOPMP-2pipe:  same, plus the extra checker pipeline cycle, which
 *                   only affects latency, not throughput;
 *  - IOMMU strict / deferred, single- or multi-core: real costs from
 *                   the IOMMU model (IOVA allocation with contention,
 *                   page-table updates, asynchronous invalidation);
 *  - sIOPMP+IOMMU:  IOMMU in deferred mode for address translation
 *                   while sIOPMP carries the security check, closing
 *                   the deferred-mode attack window;
 *  - SWIO:          bounce-buffer copy with hypervisor intervention.
 *
 * Multi-core runs split the per-packet CPU work across cores, and the
 * command-queue wait overlaps with other cores' useful work (waiting
 * on an invalidation does not stop the other cores), which is why the
 * paper's multi-core IOMMU-strict loss (20-27%) is lower than the
 * single-core loss (25-38%).
 *
 * RX is harder than TX: every receive consumes a fresh buffer mapping,
 * while TX amortizes mappings over TSO segments. That asymmetry is the
 * ops_per_packet knob.
 */

#ifndef WORKLOADS_NETWORK_HH
#define WORKLOADS_NETWORK_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace siopmp {
namespace wl {

enum class Protection {
    None,
    Siopmp,
    Siopmp2Pipe,
    IommuStrict,
    IommuDeferred,
    SiopmpPlusIommu,
    Swio,
};

const char *protectionName(Protection scheme);

struct NetworkConfig {
    bool rx = true;            //!< receive direction (vs transmit)
    unsigned cores = 1;
    unsigned packets = 20'000;
    unsigned packet_bytes = 1500;
    //! Fixed per-packet stack + wire budget (cycles) at line rate.
    Cycle base_cycles_per_packet = 2000;
    //! Map/unmap operations per packet: RX pays one pair per packet,
    //! TX amortizes over TSO segments.
    double rx_ops_per_packet = 1.0;
    double tx_ops_per_packet = 0.65;
};

struct NetworkResult {
    Protection scheme;
    double throughput_pct = 0.0; //!< relative to the None baseline
    double cpu_cycles_per_packet = 0.0;
    double wait_cycles_per_packet = 0.0;
    bool attack_window = false;  //!< stale mappings were reachable
};

/** Run one scheme. */
NetworkResult runNetwork(Protection scheme, const NetworkConfig &cfg);

/** Run the full Fig 15 row set for one direction/core count. */
std::vector<NetworkResult> runNetworkSweep(const NetworkConfig &cfg);

} // namespace wl
} // namespace siopmp

#endif // WORKLOADS_NETWORK_HH
