/**
 * @file
 * Tenant-churn workload implementation. The control loop runs in the
 * sequential gap between sim.step() calls (firmware/event context), so
 * every monitor call and every RNG draw happens in a deterministic
 * order regardless of the parallel engine's thread count; the only
 * concurrent-phase observers are the per-port burst-latency hooks,
 * each of which appends to its own port's vector (single writer) and
 * is merged in port order after the run.
 */

#include "workloads/churn.hh"

#include <memory>
#include <string>
#include <vector>

#include "devices/dma_engine.hh"
#include "fw/monitor.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "soc/cpu_node.hh"
#include "soc/soc.hh"

namespace siopmp {
namespace wl {

namespace {

constexpr Addr kDramBase = 0x8000'0000;
constexpr Addr kDramSize = 0x4000'0000;
constexpr Addr kExtTableBase = 0x7000'0000;
constexpr Addr kExtTableSize = 0x10000;
constexpr Addr kTenantWindow = 0x10'0000; //!< 1 MiB per device id

constexpr std::uint64_t kBurstBytes =
    static_cast<std::uint64_t>(bus::kBurstBeats) * bus::kBeatBytes;

/** FNV-1a accumulator for the determinism fingerprint. */
struct Fnv {
    std::uint64_t h = 1469598103934665603ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
};

/** One master port: a reusable DMA engine plus the live tenant. */
struct PortState {
    dev::DmaEngine *engine = nullptr;
    std::vector<Cycle> latencies; //!< per-burst, appended in port domain
    std::uint64_t denied = 0;

    bool busy = false;
    fw::OwnerId owner = 0;
    DeviceId device = 0;
    mem::Range window{};
    bool cold = false;
    bool remap = false;
    bool revoke = false;
    bool abort = false;
    bool did_midflight = false; //!< remap/revoke/abort already fired
    unsigned main_entry = 0;
    unsigned scratch_entry = 0;
    bool has_scratch = false;
    std::uint64_t bursts_at_start = 0;
};

} // namespace

ChurnResult
runChurn(const ChurnConfig &cfg)
{
    ChurnResult result;

    soc::SocConfig scfg;
    scfg.num_masters = cfg.ports;
    scfg.iopmp.num_entries = cfg.num_entries;
    scfg.iopmp.num_sids = cfg.num_sids;
    scfg.iopmp.num_mds = cfg.num_mds;
    scfg.checker_kind = iopmp::CheckerKind::PipelineTree;
    scfg.checker_stages = 2;
    soc::Soc soc(scfg);

    iopmp::ExtendedTable ext_table(&soc.memory(),
                                   {kExtTableBase, kExtTableSize}, 8);
    fw::SecureMonitor monitor(&soc.iopmp(), &soc.mmio(),
                              soc::kIopmpMmioBase, &ext_table,
                              &soc.monitor());
    monitor.init({kDramBase, kDramSize}, {kExtTableBase, kExtTableSize});
    soc::CpuNode cpu("cpu0", &monitor, &soc.iopmp(), &soc.sim());
    soc.add(&cpu);

    std::vector<std::unique_ptr<dev::DmaEngine>> engines;
    std::vector<PortState> ports(cfg.ports);
    for (unsigned p = 0; p < cfg.ports; ++p) {
        engines.push_back(std::make_unique<dev::DmaEngine>(
            "churn" + std::to_string(p), /*device=*/0,
            soc.masterLink(p)));
        soc.addDevice(engines.back().get(), p);
        PortState &port = ports[p];
        port.engine = engines.back().get();
        port.engine->setBurstObserver(
            [&port](Cycle latency, bool denied) {
                port.latencies.push_back(latency);
                if (denied)
                    ++port.denied;
            });
    }
    soc.setThreads(cfg.sim_threads);
    soc.sim().setFastForward(cfg.fast_forward &&
                             Simulator::defaultFastForward());

    auto &sim = soc.sim();
    Rng rng(cfg.seed);

    const auto windowOf = [&](DeviceId device) {
        return mem::Range{kDramBase + device * kTenantWindow,
                          kTenantWindow};
    };

    // Open-loop Poisson arrivals: the schedule depends only on the
    // seed, never on service progress.
    std::uint64_t arrivals = 0;
    Cycle next_arrival = 0;
    std::vector<std::uint64_t> queue_; // pending tenant sequence ids
    std::size_t queue_head = 0;

    const auto activate = [&](PortState &port, std::uint64_t seq,
                              Cycle now) {
        port.device = 1 + static_cast<DeviceId>(seq % cfg.devices);
        port.window = windowOf(port.device);
        port.cold = rng.chance(cfg.cold_fraction);
        port.remap = rng.chance(cfg.remap_fraction);
        port.revoke = rng.chance(cfg.revoke_fraction);
        port.abort = rng.chance(cfg.abort_fraction);
        port.did_midflight = false;
        port.has_scratch = false;

        const fw::CapId root = monitor.registerDevice(port.device);
        const fw::CapId derived =
            monitor.caps().deriveDevice(root, fw::CapRights::Full);
        SIOPMP_ASSERT(derived != fw::kNoCap, "device cap derivation");
        port.owner = monitor.createTee("t" + std::to_string(seq),
                                       port.window, {derived});
        SIOPMP_ASSERT(port.owner != 0, "tenant creation failed");

        if (port.cold) {
            // Cold tenant: rules live in the extended table; the first
            // DMA SID-misses and mounts through the eSID slot.
            iopmp::MountRecord record;
            record.esid = port.device;
            record.md_bitmap = std::uint64_t{1} << (cfg.num_mds - 1);
            record.entries.push_back(iopmp::Entry::range(
                port.window.base, port.window.size / 2,
                Perm::ReadWrite));
            record.entries.push_back(iopmp::Entry::range(
                port.window.base + port.window.size / 2,
                port.window.size / 2, Perm::ReadWrite));
            const bool added = monitor.registerColdDevice(record);
            SIOPMP_ASSERT(added, "cold registration failed");
            port.remap = port.revoke = false; // no mappings to edit
        } else {
            const fw::FwResult mapped =
                monitor.deviceMap(port.owner, port.device, port.window,
                                  Perm::ReadWrite, now);
            SIOPMP_ASSERT(mapped.ok, "tenant deviceMap failed");
            port.main_entry = mapped.entry_index;
            if (port.remap) {
                const fw::FwResult scratch = monitor.deviceMap(
                    port.owner, port.device,
                    {port.window.base, port.window.size / 4},
                    Perm::ReadWrite, now);
                SIOPMP_ASSERT(scratch.ok, "scratch deviceMap failed");
                port.scratch_entry = scratch.entry_index;
                port.has_scratch = true;
            }
        }

        port.engine->setDeviceId(port.device);
        dev::DmaJob job;
        if (port.abort) {
            // Copy jobs exercise the staged-write abort path.
            job.kind = dev::DmaKind::Copy;
            job.src = port.window.base;
            job.dst = port.window.base + port.window.size / 2;
        } else {
            job.kind = dev::DmaKind::Read;
            job.src = port.window.base;
        }
        job.bytes = cfg.bursts_per_tenant * kBurstBytes;
        job.max_outstanding = 2;
        port.bursts_at_start = port.engine->burstsCompleted();
        port.engine->start(job, now);
        port.busy = true;
        ++result.tenants_created;
    };

    // Inject the latency of a firmware op as a real blocking window:
    // the same block-until-handler-retires model CpuNode applies to
    // cold switches, here for map/unmap ops racing in-flight DMA.
    const auto injectBlock = [&](DeviceId device, Cycle now,
                                 Cycle cost) {
        auto sid = monitor.hotSid(device);
        if (!sid || soc.iopmp().blockBitmap().blocked(*sid))
            return;
        soc.iopmp().blockBitmap().block(*sid);
        const Sid blocked_sid = *sid;
        sim.events().schedule(now + cost, [&soc, blocked_sid] {
            soc.iopmp().blockBitmap().unblock(blocked_sid);
        });
    };

    const auto midflight = [&](PortState &port, Cycle now) {
        port.did_midflight = true;
        if (port.abort) {
            port.engine->abort(now);
            return;
        }
        if (port.revoke) {
            // Pull the tenant's main mapping out from under its DMA:
            // the remaining bursts must be denied, not serviced.
            const fw::FwResult unmapped = monitor.deviceUnmap(
                port.owner, port.device, port.main_entry, now);
            SIOPMP_ASSERT(unmapped.ok, "revoke unmap failed");
            injectBlock(port.device, now, unmapped.cost);
            return;
        }
        if (port.remap && port.has_scratch) {
            // Replace the scratch mapping while the main window keeps
            // the traffic legal — races the per-SID block primitive.
            fw::FwResult op = monitor.deviceUnmap(
                port.owner, port.device, port.scratch_entry, now);
            SIOPMP_ASSERT(op.ok, "remap unmap failed");
            Cycle cost = op.cost;
            op = monitor.deviceMap(
                port.owner, port.device,
                {port.window.base + port.window.size / 4,
                 port.window.size / 4},
                Perm::ReadWrite, now);
            SIOPMP_ASSERT(op.ok, "remap map failed");
            port.scratch_entry = op.entry_index;
            cost += op.cost;
            injectBlock(port.device, now, cost);
        }
    };

    const auto retire = [&](PortState &port) {
        const fw::FwResult destroyed = monitor.destroyTee(port.owner);
        SIOPMP_ASSERT(destroyed.ok, "tenant destroy failed");
        // Lifecycle invariants: a destroyed tenant leaves no residue
        // anywhere a DMA check could still find it.
        if (soc.iopmp().cam().peek(port.device))
            ++result.invariant_violations;
        if (soc.iopmp().mountedCold() == port.device)
            ++result.invariant_violations;
        if (ext_table.contains(port.device))
            ++result.invariant_violations;
        port.busy = false;
        ++result.tenants_destroyed;
    };

    while (sim.now() < cfg.horizon) {
        const Cycle now = sim.now();

        while (next_arrival <= now && arrivals < cfg.tenants) {
            queue_.push_back(arrivals++);
            const double gap = rng.exponential(cfg.arrival_mean);
            next_arrival += gap < 1.0 ? 1 : static_cast<Cycle>(gap);
            // Pin the arrival to the event queue: the fast-forward
            // idle skip jumps to the next *event*, and the sequential
            // and sharded engines retire components on slightly
            // different cycles, so without an event near the arrival
            // time the engines would hand control back at different
            // `now` values and the tenant would activate at different
            // times. The pin lands one cycle *before* the arrival:
            // step() processes the pinned cycle and returns with now
            // advanced past it, so the loop observes now ==
            // next_arrival — exactly when the naive per-cycle loop
            // (SIOPMP_NO_FAST_FORWARD=1) first sees the arrival due.
            if (arrivals < cfg.tenants)
                sim.events().schedule(next_arrival - 1, [] {});
        }

        for (PortState &port : ports) {
            if (!port.busy) {
                if (queue_head < queue_.size())
                    activate(port, queue_[queue_head++], now);
                continue;
            }
            const std::uint64_t bursts =
                port.engine->burstsCompleted() - port.bursts_at_start;
            if (!port.did_midflight &&
                (port.abort || port.revoke || port.remap) &&
                bursts * 2 >= cfg.bursts_per_tenant) {
                midflight(port, now);
            }
            if (port.engine->done() &&
                soc.monitor().quiesced(port.device)) {
                retire(port);
                // Re-activate in the same iteration: with the
                // fast-forward idle skip a freed port would otherwise
                // sleep until the next *event* cycle, while the naive
                // loop would hand control back one cycle later — the
                // backlogged tenant must start at the retire cycle in
                // both for bit-identical results.
                if (queue_head < queue_.size())
                    activate(port, queue_[queue_head++], now);
            }
        }

        // Exit before stepping: one more step after the final retire
        // would idle-skip to the next pending event under fast-forward
        // but advance a single cycle under the naive loop, making the
        // reported cycle count scheduler-dependent.
        if (result.tenants_destroyed >= cfg.tenants)
            break;
        sim.step();
    }

    result.cycles = sim.now();
    for (const PortState &port : ports) {
        result.bursts_completed += port.latencies.size();
        result.denied_bursts += port.denied;
    }
    result.cold_switches = monitor.coldSwitches();
    result.sid_misses = static_cast<std::uint64_t>(
        soc.iopmp().statsGroup().scalar("sid_misses").value());
    result.promotions = static_cast<std::uint64_t>(
        monitor.statsGroup().scalar("promotions").value());
    result.demotions = static_cast<std::uint64_t>(
        monitor.statsGroup().scalar("demotions").value());
    result.cam_evictions = static_cast<std::uint64_t>(
        monitor.statsGroup().scalar("cam_evictions").value());
    result.mounted_cold_flushes = static_cast<std::uint64_t>(
        monitor.statsGroup().scalar("mounted_cold_flushes").value());
    result.block_windows = soc.monitor().blockWindows();

    // The re-arm counter lives in each checker node's private stats
    // group; sum it across the Soc's components.
    struct RearmSummer : stats::StatsVisitor {
        std::uint64_t total = 0;
        void
        visitScalar(const stats::Group &, const std::string &name,
                    const stats::Scalar &s) override
        {
            if (name == "sid_miss_rearms")
                total += static_cast<std::uint64_t>(s.value());
        }
        void visitAverage(const stats::Group &, const std::string &,
                          const stats::Average &) override {}
        void visitDistribution(const stats::Group &, const std::string &,
                               const stats::Distribution &) override {}
        void visitHistogram(const stats::Group &, const std::string &,
                            const stats::Histogram &) override {}
    } rearms;
    soc.accept(rearms);
    result.sid_miss_rearms = rearms.total;

    // Merge the per-port latency series in port order into one
    // distribution — deterministic because each port's series is
    // single-writer and ordered by its own tick domain.
    stats::Distribution checks;
    for (const PortState &port : ports) {
        for (Cycle latency : port.latencies)
            checks.sample(static_cast<double>(latency));
    }
    if (checks.count() > 0) {
        result.check_p50 = checks.percentile(50.0);
        result.check_p99 = checks.percentile(99.0);
        result.check_mean = checks.mean();
    }
    auto &cold_dist =
        monitor.statsGroup().distribution("cold_switch_cycles");
    if (cold_dist.count() > 0) {
        result.cold_switch_p50 = cold_dist.percentile(50.0);
        result.cold_switch_p99 = cold_dist.percentile(99.0);
    }
    auto &hist = soc.monitor().statsGroup().histogram(
        "block_window_cycles", 0.0, 8.0, 16);
    result.block_window_hist.push_back(hist.underflow());
    for (std::size_t i = 0; i < hist.numBuckets(); ++i)
        result.block_window_hist.push_back(hist.bucketCount(i));
    result.block_window_hist.push_back(hist.overflow());
    result.block_window_mean =
        soc.monitor().statsGroup().average("block_window_mean").mean();

    const double sim_seconds =
        static_cast<double>(result.cycles) / (cfg.cpu_ghz * 1e9);
    result.churn_per_sim_s =
        sim_seconds > 0.0
            ? static_cast<double>(result.tenants_destroyed) / sim_seconds
            : 0.0;

    Fnv fnv;
    fnv.mix(result.tenants_created);
    fnv.mix(result.tenants_destroyed);
    fnv.mix(result.denied_bursts);
    fnv.mix(result.cold_switches);
    fnv.mix(result.sid_misses);
    fnv.mix(result.promotions);
    fnv.mix(result.demotions);
    fnv.mix(result.cam_evictions);
    fnv.mix(result.mounted_cold_flushes);
    fnv.mix(result.block_windows);
    fnv.mix(result.invariant_violations);
    fnv.mix(result.cycles);
    for (const PortState &port : ports) {
        fnv.mix(port.latencies.size());
        for (Cycle latency : port.latencies)
            fnv.mix(latency);
    }
    for (std::uint64_t bucket : result.block_window_hist)
        fnv.mix(bucket);
    result.fingerprint = fnv.h;
    return result;
}

} // namespace wl
} // namespace siopmp
