/**
 * @file
 * Distributed-memcached latency workload (Fig 16). Open-loop Poisson
 * request arrivals are served by a pool of worker threads (4 in the
 * paper); each request's service time is the memcached processing
 * time plus the per-request network DMA cost of the configured I/O
 * protection scheme. Because sIOPMP's per-packet cost is a handful of
 * synchronous MMIO cycles and its checker sits outside the CPU core,
 * its latency curves overlay the unprotected ones at every load —
 * which is exactly the figure's claim.
 *
 * The queueing model is an event-driven M/G/k simulation with a
 * deterministic RNG; sojourn times (queueing + service) are collected
 * and reported as p50/p99 per offered QPS.
 */

#ifndef WORKLOADS_MEMCACHED_HH
#define WORKLOADS_MEMCACHED_HH

#include <vector>

#include "sim/types.hh"
#include "workloads/network.hh"

namespace siopmp {
namespace wl {

struct MemcachedConfig {
    unsigned threads = 4;
    unsigned requests = 40'000;
    double cpu_ghz = 3.2;
    //! Service time: floor + exponential tail (us).
    double service_floor_us = 40.0;
    double service_exp_mean_us = 40.0;
    std::uint64_t seed = 42;
    unsigned request_packet_bytes = 1024;
};

struct MemcachedPoint {
    double offered_qps = 0.0;
    double achieved_qps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
};

/** Run one load point under one protection scheme. */
MemcachedPoint runMemcached(Protection scheme, double offered_qps,
                            const MemcachedConfig &cfg = {});

/** Sweep QPS from @p lo to @p hi in @p steps points. */
std::vector<MemcachedPoint> runMemcachedSweep(Protection scheme, double lo,
                                              double hi, unsigned steps,
                                              const MemcachedConfig &cfg
                                              = {});

} // namespace wl
} // namespace siopmp

#endif // WORKLOADS_MEMCACHED_HH
