/**
 * @file
 * Network workload implementation.
 */

#include "workloads/network.hh"

#include <memory>

#include "fw/monitor.hh"
#include "fw/smode_driver.hh"
#include "iommu/iommu.hh"
#include "iopmp/siopmp.hh"
#include "mem/mmio.hh"
#include "swio/bounce.hh"
#include "sim/logging.hh"

namespace siopmp {
namespace wl {

const char *
protectionName(Protection scheme)
{
    switch (scheme) {
      case Protection::None: return "no-protection";
      case Protection::Siopmp: return "sIOPMP";
      case Protection::Siopmp2Pipe: return "sIOPMP-2pipe";
      case Protection::IommuStrict: return "IOMMU-strict";
      case Protection::IommuDeferred: return "IOMMU-deferred";
      case Protection::SiopmpPlusIommu: return "sIOPMP+IOMMU";
      case Protection::Swio: return "SWIO";
    }
    return "?";
}

namespace {

/** Standalone sIOPMP entry-rewrite cost source: a real SIopmp unit
 * behind a real MMIO bus, driven through the monitor's delegation by
 * the S-mode DMA driver — the exact per-packet path a kernel uses. */
class SiopmpCostSource
{
  public:
    SiopmpCostSource()
        : unit_(iopmp::IopmpConfig{}, iopmp::CheckerKind::PipelineTree, 2),
          mmio_(2),
          monitor_(&unit_, &mmio_, 0x1000'0000, nullptr, nullptr),
          driver_(&monitor_, 0, 8)
    {
        mmio_.map("siopmp", {0x1000'0000, iopmp::regmap::kWindowSize},
                  &unit_);
        monitor_.init({0x8000'0000, 0x4000'0000}, {0x7000'0000, 0x1000});
        unit_.cam().set(0, kNicDevice);
    }

    /** dma_map: program one delegated entry for the packet buffer. */
    Cycle
    mapCost(Addr addr, Addr len)
    {
        mapping_ = driver_.dmaMap(addr, len, Perm::ReadWrite);
        SIOPMP_ASSERT(mapping_.ok, "delegated dma_map failed");
        return mapping_.cost;
    }

    /** dma_unmap: reset the entry (single atomic cfg write; no
     * blocking needed for a single-entry disable). */
    Cycle
    unmapCost()
    {
        return driver_.dmaUnmap(mapping_);
    }

  private:
    static constexpr DeviceId kNicDevice = 7;
    iopmp::SIopmp unit_;
    mem::MmioBus mmio_;
    fw::SecureMonitor monitor_;
    fw::SmodeDmaDriver driver_;
    fw::SmodeMapping mapping_;
};

} // namespace

NetworkResult
runNetwork(Protection scheme, const NetworkConfig &cfg)
{
    NetworkResult result;
    result.scheme = scheme;

    const double ops_per_packet =
        cfg.rx ? cfg.rx_ops_per_packet : cfg.tx_ops_per_packet;

    // Scheme state.
    std::unique_ptr<iommu::Iommu> mmu;
    if (scheme == Protection::IommuStrict) {
        iommu::IommuConfig icfg;
        icfg.mode = iommu::UnmapMode::Strict;
        mmu = std::make_unique<iommu::Iommu>(icfg);
    } else if (scheme == Protection::IommuDeferred ||
               scheme == Protection::SiopmpPlusIommu) {
        iommu::IommuConfig icfg;
        icfg.mode = iommu::UnmapMode::Deferred;
        mmu = std::make_unique<iommu::Iommu>(icfg);
    }
    std::unique_ptr<SiopmpCostSource> siopmp;
    if (scheme == Protection::Siopmp ||
        scheme == Protection::Siopmp2Pipe ||
        scheme == Protection::SiopmpPlusIommu) {
        siopmp = std::make_unique<SiopmpCostSource>();
    }
    swio::BounceBuffer bounce;

    // Packet loop: accumulate CPU work and overlappable wait.
    double cpu_total = 0.0;
    double wait_total = 0.0;
    Cycle now = 0;
    const Addr buf_base = 0x8800'0000;

    for (unsigned p = 0; p < cfg.packets; ++p) {
        // Fractional ops per packet: issue an op every 1/ops packets.
        const bool do_ops =
            static_cast<std::uint64_t>(p * ops_per_packet) !=
            static_cast<std::uint64_t>((p + 1) * ops_per_packet);
        const Addr buf =
            buf_base + (p % 1024) * iommu::kPageSize;
        Cycle cpu = 0;
        Cycle wait = 0;

        if (do_ops) {
            switch (scheme) {
              case Protection::None:
                break;
              case Protection::Siopmp:
              case Protection::Siopmp2Pipe:
                cpu += siopmp->mapCost(buf, cfg.packet_bytes);
                cpu += siopmp->unmapCost();
                break;
              case Protection::IommuStrict:
              case Protection::IommuDeferred: {
                const unsigned cpu_idx = p % cfg.cores;
                auto map = mmu->dmaMap(buf, 1, Perm::ReadWrite, cpu_idx,
                                       cfg.cores, now);
                cpu += map.cost;
                Cycle unmap_wait = 0;
                const Cycle unmap = mmu->dmaUnmap(map.iova, 1, cpu_idx,
                                                  now + cpu, &unmap_wait);
                cpu += unmap - unmap_wait;
                wait += unmap_wait;
                break;
              }
              case Protection::SiopmpPlusIommu: {
                // IOMMU translates (deferred, cheap); sIOPMP closes the
                // window with its synchronous entry reset.
                const unsigned cpu_idx = p % cfg.cores;
                auto map = mmu->dmaMap(buf, 1, Perm::ReadWrite, cpu_idx,
                                       cfg.cores, now);
                cpu += map.cost;
                Cycle unmap_wait = 0;
                const Cycle unmap = mmu->dmaUnmap(map.iova, 1, cpu_idx,
                                                  now + cpu, &unmap_wait);
                cpu += unmap - unmap_wait;
                wait += unmap_wait;
                cpu += siopmp->mapCost(buf, cfg.packet_bytes);
                cpu += siopmp->unmapCost();
                break;
              }
              case Protection::Swio:
                cpu += bounce.transferCost(cfg.packet_bytes);
                break;
            }
        }

        cpu_total += static_cast<double>(cpu);
        wait_total += static_cast<double>(wait);
        now += cfg.base_cycles_per_packet + cpu;
    }

    const double n = static_cast<double>(cfg.packets);
    result.cpu_cycles_per_packet = cpu_total / n;
    result.wait_cycles_per_packet = wait_total / n;

    // Effective per-packet cost: CPU work divides across cores; the
    // invalidation wait overlaps with other cores' useful work.
    const double base = static_cast<double>(cfg.base_cycles_per_packet);
    const double effective =
        base + result.cpu_cycles_per_packet +
        result.wait_cycles_per_packet / static_cast<double>(cfg.cores);
    result.throughput_pct = 100.0 * base / effective;

    // sIOPMP+IOMMU and plain deferred differ in security, not speed:
    // only the bare deferred mode leaves the attack window open.
    result.attack_window =
        scheme == Protection::IommuDeferred && mmu->staleMappings() > 0;
    return result;
}

std::vector<NetworkResult>
runNetworkSweep(const NetworkConfig &cfg)
{
    std::vector<NetworkResult> results;
    for (Protection scheme :
         {Protection::None, Protection::Siopmp, Protection::Siopmp2Pipe,
          Protection::IommuDeferred, Protection::IommuStrict,
          Protection::SiopmpPlusIommu, Protection::Swio}) {
        results.push_back(runNetwork(scheme, cfg));
    }
    return results;
}

} // namespace wl
} // namespace siopmp
