/**
 * @file
 * Traffic runner implementations.
 */

#include "workloads/traffic.hh"

#include "devices/dma_engine.hh"
#include "soc/soc.hh"

namespace siopmp {
namespace wl {

namespace {

/** Allowed window for the test device; everything else violates. */
constexpr Addr kAllowedBase = 0x8000'0000;
constexpr Addr kAllowedSize = 0x0100'0000;
constexpr Addr kForbiddenBase = 0x9800'0000;

void
bindDevice(soc::Soc &soc, Sid sid, DeviceId device)
{
    auto &unit = soc.iopmp();
    unit.cam().set(sid, device);
    unit.src2md().associate(sid, 0);
    unit.mdcfg().setTop(0, 16);
    for (MdIndex md = 1; md < unit.config().num_mds; ++md)
        unit.mdcfg().setTop(md, 16);
    unit.entryTable().set(
        0, iopmp::Entry::range(kAllowedBase, kAllowedSize,
                               Perm::ReadWrite));
}

} // namespace

Cycle
runBurstLatency(const BurstLatencyConfig &cfg)
{
    soc::SocConfig soc_cfg;
    soc_cfg.checker_kind = cfg.stages > 1
                               ? iopmp::CheckerKind::PipelineTree
                               : iopmp::CheckerKind::Tree;
    soc_cfg.checker_stages = cfg.stages;
    soc_cfg.policy = cfg.policy;
    soc_cfg.sim_threads = cfg.sim_threads;
    soc::Soc soc(soc_cfg);

    dev::DmaEngine engine("dma0", /*device=*/1, soc.masterLink(0));
    soc.addDevice(&engine, 0);
    bindDevice(soc, 0, 1);

    dev::DmaJob job;
    job.kind = cfg.write ? dev::DmaKind::Write : dev::DmaKind::Read;
    const Addr target = cfg.violating ? kForbiddenBase : kAllowedBase;
    job.src = target;
    job.dst = target;
    job.bytes = static_cast<std::uint64_t>(cfg.bursts) *
                bus::kBurstBeats * bus::kBeatBytes;
    job.max_outstanding = 1; // worst case: consecutive bursts

    engine.start(job, soc.sim().now());
    soc.sim().runUntil([&] { return engine.done(); }, 1'000'000);
    return engine.completedAt() - engine.startedAt();
}

double
runBandwidth(const BandwidthConfig &cfg)
{
    soc::SocConfig soc_cfg;
    soc_cfg.num_masters = 2;
    soc_cfg.checker_kind = cfg.stages > 1
                               ? iopmp::CheckerKind::PipelineTree
                               : iopmp::CheckerKind::Tree;
    soc_cfg.checker_stages = cfg.stages;
    soc_cfg.policy = cfg.policy;
    soc_cfg.sim_threads = cfg.sim_threads;
    soc::Soc soc(soc_cfg);

    dev::DmaEngine node0("dma0", 1, soc.masterLink(0));
    dev::DmaEngine node1("dma1", 2, soc.masterLink(1));
    soc.addDevice(&node0, 0);
    soc.addDevice(&node1, 1);
    bindDevice(soc, 0, 1);
    soc.iopmp().cam().set(1, 2);
    soc.iopmp().src2md().associate(1, 0);

    const std::uint64_t bytes = static_cast<std::uint64_t>(
        cfg.bursts_per_node) * bus::kBurstBeats * bus::kBeatBytes;

    auto make_job = [&](bool write, Addr offset) {
        dev::DmaJob job;
        job.kind = write ? dev::DmaKind::Write : dev::DmaKind::Read;
        job.src = kAllowedBase + offset;
        job.dst = kAllowedBase + 0x80'0000 + offset;
        job.bytes = bytes;
        job.max_outstanding = cfg.max_outstanding;
        return job;
    };

    const bool node0_write = cfg.scenario == BandwidthScenario::WriteWrite;
    const bool node1_write = cfg.scenario != BandwidthScenario::ReadRead;
    node0.start(make_job(node0_write, 0x0), 0);
    node1.start(make_job(node1_write, 0x40'0000), 0);

    soc.sim().runUntil([&] { return node0.done() && node1.done(); },
                       2'000'000);
    const Cycle end =
        std::max(node0.completedAt(), node1.completedAt());
    const Cycle start =
        std::min(node0.startedAt(), node1.startedAt());
    if (end == start)
        return 0.0;
    return static_cast<double>(2 * bytes) /
           static_cast<double>(end - start);
}

} // namespace wl
} // namespace siopmp
