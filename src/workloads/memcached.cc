/**
 * @file
 * Memcached workload implementation.
 */

#include "workloads/memcached.hh"

#include <algorithm>
#include <queue>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "swio/bounce.hh"

namespace siopmp {
namespace wl {

namespace {

/**
 * Per-request protection cost in microseconds. Grounded in the same
 * cost sources as the network workload: a request/response pair is one
 * RX and one TX packet, i.e. one map/unmap pair each.
 */
double
protectionCostUs(Protection scheme, const MemcachedConfig &cfg)
{
    const double cycles_per_us = cfg.cpu_ghz * 1000.0;
    NetworkConfig ncfg;
    ncfg.packets = 512; // small probe run to measure per-packet cost
    ncfg.packet_bytes = cfg.request_packet_bytes;
    const NetworkResult probe = runNetwork(scheme, ncfg);
    const double per_packet =
        probe.cpu_cycles_per_packet + probe.wait_cycles_per_packet;
    return 2.0 * per_packet / cycles_per_us; // RX + TX
}

} // namespace

MemcachedPoint
runMemcached(Protection scheme, double offered_qps,
             const MemcachedConfig &cfg)
{
    MemcachedPoint point;
    point.offered_qps = offered_qps;
    if (offered_qps <= 0.0)
        return point;

    Rng rng(cfg.seed);
    const double mean_interarrival_us = 1e6 / offered_qps;
    const double extra_us = protectionCostUs(scheme, cfg);

    // M/G/k event simulation in double-precision microseconds:
    // workers become free at known times; each arrival takes the
    // earliest-free worker (FIFO queue discipline).
    std::priority_queue<double, std::vector<double>, std::greater<>>
        worker_free;
    for (unsigned w = 0; w < cfg.threads; ++w)
        worker_free.push(0.0);

    stats::Distribution sojourn;
    double arrival = 0.0;
    double last_completion = 0.0;

    for (unsigned r = 0; r < cfg.requests; ++r) {
        arrival += rng.exponential(mean_interarrival_us);
        const double service = cfg.service_floor_us +
                               rng.exponential(cfg.service_exp_mean_us) +
                               extra_us;
        const double worker_ready = worker_free.top();
        worker_free.pop();
        const double start = std::max(arrival, worker_ready);
        const double completion = start + service;
        worker_free.push(completion);
        sojourn.sample(completion - arrival);
        last_completion = std::max(last_completion, completion);
    }

    point.p50_us = sojourn.percentile(50);
    point.p99_us = sojourn.percentile(99);
    point.achieved_qps =
        last_completion > 0.0
            ? static_cast<double>(cfg.requests) * 1e6 / last_completion
            : 0.0;
    return point;
}

std::vector<MemcachedPoint>
runMemcachedSweep(Protection scheme, double lo, double hi, unsigned steps,
                  const MemcachedConfig &cfg)
{
    std::vector<MemcachedPoint> points;
    for (unsigned i = 0; i < steps; ++i) {
        const double qps =
            steps > 1 ? lo + (hi - lo) * i / (steps - 1) : lo;
        points.push_back(runMemcached(scheme, qps, cfg));
    }
    return points;
}

} // namespace wl
} // namespace siopmp
