/**
 * @file
 * Cold-device switching workload (Fig 17). Two devices share the SoC:
 * a long-running "hot" device streaming DMA bursts and an intermittent
 * "cold" device issuing one burst for every N hot bursts. Two
 * configurations are compared:
 *
 *  - matched (hot-cold): the hot device holds a CAM row (fixed SID)
 *    and the cold device lives in the extended table, mounted once via
 *    the eSID slot. Cold switching never touches the hot device.
 *
 *  - mismatched (cold-cold): both devices are registered as cold, so
 *    every alternation thrashes the single eSID slot — each switch
 *    costs a SID-missing interrupt plus the mount procedure, and the
 *    "hot" device stalls behind its own remounts.
 *
 * The result is the hot device's throughput as a percentage of a run
 * without any cold device at all.
 */

#ifndef WORKLOADS_HOTCOLD_HH
#define WORKLOADS_HOTCOLD_HH

#include "sim/types.hh"

namespace siopmp {
namespace wl {

struct HotColdConfig {
    unsigned ratio = 100;      //!< hot bursts per cold burst
    bool matched = true;       //!< hot device correctly marked hot
    unsigned hot_bursts = 2000; //!< total hot bursts to complete
    unsigned sim_threads = 0;  //!< parallel engine workers (0 = off)
};

struct HotColdResult {
    double hot_throughput_pct = 0.0; //!< vs. no-cold-device baseline
    Cycle hot_cycles = 0;            //!< hot job duration with cold dev
    Cycle baseline_cycles = 0;       //!< hot job duration alone
    std::uint64_t cold_switches = 0;
    std::uint64_t sid_misses = 0;
};

HotColdResult runHotCold(const HotColdConfig &cfg);

/** Cold-switch latency in CPU cycles for @p entries mounted entries
 * (the paper reports 341 cycles for 8 entries). */
Cycle coldSwitchCost(unsigned entries);

} // namespace wl
} // namespace siopmp

#endif // WORKLOADS_HOTCOLD_HH
