/**
 * @file
 * Fleet-scale tenant-churn workload: a long-running multi-tenant host
 * where TEEs are created and destroyed at cloud rates through the full
 * SecureMonitor lifecycle (createTee → deviceMap → DMA traffic →
 * deviceUnmap → destroyTee), over a device population far exceeding
 * CAM + eSID capacity. Tenant arrivals are open-loop Poisson (the
 * memcached-style load model); mount/unmount/revoke operations are
 * issued *against in-flight DMA* so the per-SID blocking primitive is
 * genuinely raced, and cold switching, SID-miss interrupt storms and
 * implicit hot promotion fire continuously.
 *
 * This is the "millions of users" proof point from the ROADMAP: the
 * mechanisms (extended table, eSID slot, CAM promotion, blocking
 * windows) all exist — this workload exercises their *lifecycles* hard
 * enough to trust them, and is the harness that keeps the mount/
 * eviction/destroy bugfixes fixed.
 *
 * Reported metrics: p50/p99 per-burst check latency (includes
 * cold-mount stalls — the interesting tail), cold-switch latency
 * percentiles, blocking-window histogram, churn rate in TEE
 * create/destroy cycles per simulated second. The run is deterministic
 * per seed and bit-identical under the sharded parallel engine at any
 * thread count (the result carries an FNV-1a fingerprint over every
 * deterministic observable to prove it).
 */

#ifndef WORKLOADS_CHURN_HH
#define WORKLOADS_CHURN_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace siopmp {
namespace wl {

struct ChurnConfig {
    unsigned ports = 4;    //!< DMA engines (concurrent live tenants)
    unsigned devices = 64; //!< device-id population (≥ 4x CAM+eSID)
    unsigned tenants = 400; //!< TEE lifecycles to complete
    double arrival_mean = 600.0; //!< Poisson inter-arrival, cycles
    unsigned bursts_per_tenant = 4; //!< DMA bursts per tenant job
    double cold_fraction = 0.5;  //!< tenants registered as cold devices
    double remap_fraction = 0.35; //!< mapped tenants remapping mid-DMA
    double revoke_fraction = 0.15; //!< tenants losing their mapping mid-DMA
    double abort_fraction = 0.15; //!< tenants whose job is aborted
    //! Small sIOPMP: 3 CAM rows + the cold SID. Four live tenants
    //! contending for three rows keeps eviction/promotion churn
    //! continuous; the 64-device population is 16x (CAM + eSID).
    unsigned num_sids = 4;
    unsigned num_mds = 4;
    unsigned num_entries = 32;
    std::uint64_t seed = 1;
    unsigned sim_threads = 0; //!< parallel engine workers (0 = off)
    //! Run on the naive per-cycle loop instead of the quiescence
    //! fast-forward scheduler. Results are bit-identical either way
    //! (the arrival pinning + same-iteration re-activation in the
    //! control loop exist to keep it so); the knob is the regression
    //! hook that proves it.
    bool fast_forward = true;
    Cycle horizon = 30'000'000; //!< safety stop
    double cpu_ghz = 1.0; //!< cycles-to-seconds for the churn rate
};

struct ChurnResult {
    std::uint64_t tenants_created = 0;
    std::uint64_t tenants_destroyed = 0;
    std::uint64_t bursts_completed = 0;
    std::uint64_t denied_bursts = 0;
    std::uint64_t cold_switches = 0;
    std::uint64_t sid_misses = 0;
    std::uint64_t sid_miss_rearms = 0; //!< checker re-arms (livelock fix)
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t cam_evictions = 0;
    std::uint64_t mounted_cold_flushes = 0;
    std::uint64_t block_windows = 0;
    std::uint64_t invariant_violations = 0; //!< post-destroy residue
    Cycle cycles = 0;
    double churn_per_sim_s = 0.0; //!< destroys per simulated second

    double check_p50 = 0.0;  //!< per-burst latency percentiles
    double check_p99 = 0.0;
    double check_mean = 0.0;
    double cold_switch_p50 = 0.0;
    double cold_switch_p99 = 0.0;
    double block_window_mean = 0.0;
    //! Blocking-window histogram: underflow, 16 buckets of 8 cycles
    //! starting at 0, overflow (the BusMonitor shape).
    std::vector<std::uint64_t> block_window_hist;

    //! FNV-1a over every deterministic observable (counters, per-port
    //! latency series, histogram, final cycle): equal fingerprints ⇔
    //! bit-identical runs.
    std::uint64_t fingerprint = 0;
};

ChurnResult runChurn(const ChurnConfig &cfg);

} // namespace wl
} // namespace siopmp

#endif // WORKLOADS_CHURN_HH
