/**
 * @file
 * Microbenchmark traffic runners shared by the test suite and the
 * bench harnesses:
 *
 *  - runBurstLatency: Fig 11's worst case. One DMA master issues 64
 *    consecutive 8-beat bursts with no outstanding transactions and
 *    the total latency (first request to last response) is measured,
 *    for reads/writes, legal and violating, across checker pipeline
 *    depths and violation policies.
 *
 *  - runBandwidth: Fig 12's peak throughput. Two DMA masters with
 *    outstanding/out-of-order transactions saturate the fabric in
 *    Read-Read / Read-Write / Write-Write scenarios; the result is
 *    aggregate payload bytes per cycle.
 */

#ifndef WORKLOADS_TRAFFIC_HH
#define WORKLOADS_TRAFFIC_HH

#include "iopmp/checker.hh"
#include "iopmp/violation.hh"
#include "sim/types.hh"

namespace siopmp {
namespace wl {

struct BurstLatencyConfig {
    unsigned stages = 1; //!< checker pipeline stages (1 = no-pipe)
    iopmp::ViolationPolicy policy = iopmp::ViolationPolicy::BusError;
    bool write = false;     //!< write bursts instead of reads
    bool violating = false; //!< target a forbidden region
    unsigned bursts = 64;
    unsigned sim_threads = 0; //!< parallel engine workers (0 = off)
};

/** Total cycles for the configured burst train. */
Cycle runBurstLatency(const BurstLatencyConfig &cfg);

/** Fig 12 traffic scenario. */
enum class BandwidthScenario { ReadRead, ReadWrite, WriteWrite };

struct BandwidthConfig {
    BandwidthScenario scenario = BandwidthScenario::ReadRead;
    unsigned stages = 1;
    iopmp::ViolationPolicy policy = iopmp::ViolationPolicy::BusError;
    unsigned bursts_per_node = 64;
    unsigned max_outstanding = 8;
    unsigned sim_threads = 0; //!< parallel engine workers (0 = off)
};

/** Aggregate payload bytes per cycle across both DMA nodes. */
double runBandwidth(const BandwidthConfig &cfg);

} // namespace wl
} // namespace siopmp

#endif // WORKLOADS_TRAFFIC_HH
