/**
 * @file
 * Hot/cold workload implementation: drives the full cycle-level SoC
 * with the secure monitor servicing SID-missing interrupts.
 */

#include "workloads/hotcold.hh"

#include <algorithm>

#include "devices/dma_engine.hh"
#include "fw/monitor.hh"
#include "soc/cpu_node.hh"
#include "soc/soc.hh"

namespace siopmp {
namespace wl {

namespace {

constexpr DeviceId kHotDevice = 1;
constexpr DeviceId kColdDevice = 2;
constexpr Addr kHotWindow = 0x8000'0000;
constexpr Addr kColdWindow = 0x8100'0000;
constexpr Addr kWindowSize = 0x0100'0000;
constexpr Addr kExtTableBase = 0x7000'0000;

struct Bench {
    explicit Bench(unsigned masters, fw::MonitorConfig mcfg = {},
                   unsigned ext_record_entries = 8)
        : soc(makeConfig(masters)),
          ext_table(&soc.memory(), {kExtTableBase, 0x10000},
                    ext_record_entries),
          monitor(&soc.iopmp(), &soc.mmio(), soc::kIopmpMmioBase,
                  &ext_table, &soc.monitor(), mcfg),
          cpu("cpu0", &monitor, &soc.iopmp(), &soc.sim())
    {
        monitor.init({0x8000'0000, 0x4000'0000}, {kExtTableBase, 0x10000});
        soc.add(&cpu);
    }

    static soc::SocConfig
    makeConfig(unsigned masters)
    {
        soc::SocConfig cfg;
        cfg.num_masters = masters;
        cfg.checker_kind = iopmp::CheckerKind::PipelineTree;
        cfg.checker_stages = 2;
        return cfg;
    }

    /** Register a device as hot: CAM row + rules in its MD window. */
    void
    makeHot(Sid sid, DeviceId device, Addr window)
    {
        soc.iopmp().cam().set(sid, device);
        auto [lo, hi] = monitor.mdWindow(sid);
        soc.iopmp().entryTable().set(
            lo, iopmp::Entry::range(window, kWindowSize, Perm::ReadWrite));
    }

    /** Register a device as cold: rules only in the extended table. */
    void
    makeCold(DeviceId device, Addr window)
    {
        iopmp::MountRecord record;
        record.esid = device;
        record.md_bitmap = std::uint64_t{1}
                           << (soc.iopmp().config().num_mds - 1);
        for (unsigned i = 0; i < 8; ++i) {
            record.entries.push_back(iopmp::Entry::range(
                window + i * (kWindowSize / 8), kWindowSize / 8,
                Perm::ReadWrite));
        }
        monitor.registerColdDevice(record);
    }

    soc::Soc soc;
    iopmp::ExtendedTable ext_table;
    fw::SecureMonitor monitor;
    soc::CpuNode cpu;
};

constexpr std::uint64_t kBurstBytes =
    static_cast<std::uint64_t>(bus::kBurstBeats) * bus::kBeatBytes;

/** How the two devices are registered for one experiment arm. */
enum class Arm {
    BothHot,    //!< reference: no switching anywhere
    Matched,    //!< hot device hot, cold device via the eSID slot
    Mismatched, //!< both devices (wrongly) cold
};

/**
 * Drive the two-device interleaving (one cold burst per `ratio` hot
 * bursts) and return the hot device's job duration. The reference arm
 * runs the identical traffic pattern with both devices hot, so the
 * percentage isolates switching overhead from plain bus sharing.
 */
Cycle
runArm(const HotColdConfig &cfg, Arm arm, std::uint64_t *switches,
       std::uint64_t *misses)
{
    fw::MonitorConfig mcfg;
    if (arm == Arm::Mismatched)
        mcfg.promote_threshold = ~0u; // the experiment keeps them cold
    Bench bench(2, mcfg);

    switch (arm) {
      case Arm::BothHot:
        bench.makeHot(0, kHotDevice, kHotWindow);
        bench.makeHot(1, kColdDevice, kColdWindow);
        break;
      case Arm::Matched:
        bench.makeHot(0, kHotDevice, kHotWindow);
        bench.makeCold(kColdDevice, kColdWindow);
        break;
      case Arm::Mismatched:
        bench.makeCold(kHotDevice, kHotWindow);
        bench.makeCold(kColdDevice, kColdWindow);
        break;
    }

    dev::DmaEngine hot("hot", kHotDevice, bench.soc.masterLink(0));
    dev::DmaEngine cold("cold", kColdDevice, bench.soc.masterLink(1));
    bench.soc.addDevice(&hot, 0);
    bench.soc.addDevice(&cold, 1);
    bench.soc.setThreads(cfg.sim_threads);

    dev::DmaJob hot_job;
    hot_job.kind = dev::DmaKind::Read;
    hot_job.src = kHotWindow;
    hot_job.bytes = cfg.hot_bursts * kBurstBytes;
    hot_job.max_outstanding = 4;
    hot.start(hot_job, 0);

    std::uint64_t next_cold_at = cfg.ratio;
    bool cold_active = false;

    auto &sim = bench.soc.sim();
    while (!hot.done() && sim.now() < 200'000'000) {
        if (cold_active && cold.done())
            cold_active = false;
        if (!cold_active && hot.burstsCompleted() >= next_cold_at) {
            dev::DmaJob cold_job;
            cold_job.kind = dev::DmaKind::Read;
            cold_job.src = kColdWindow;
            cold_job.bytes = kBurstBytes;
            cold.start(cold_job, sim.now());
            cold_active = true;
            next_cold_at += cfg.ratio;
        }
        sim.step();
    }

    if (switches)
        *switches = bench.monitor.coldSwitches();
    if (misses) {
        *misses = static_cast<std::uint64_t>(
            bench.soc.iopmp().statsGroup().scalar("sid_misses").value());
    }
    return hot.completedAt() - hot.startedAt();
}

} // namespace

Cycle
coldSwitchCost(unsigned entries)
{
    // Size the cold window and extended-table records to fit the
    // requested entry count.
    fw::MonitorConfig mcfg;
    mcfg.cold_window_entries = std::max(8u, entries);
    Bench bench(1, mcfg, /*ext_record_entries=*/std::max(8u, entries));
    iopmp::MountRecord record;
    record.esid = kColdDevice;
    record.md_bitmap = std::uint64_t{1}
                       << (bench.soc.iopmp().config().num_mds - 1);
    for (unsigned i = 0; i < entries; ++i) {
        record.entries.push_back(iopmp::Entry::range(
            kColdWindow + i * 0x1000, 0x1000, Perm::ReadWrite));
    }
    bench.monitor.registerColdDevice(record);

    // Trigger exactly one SID-missing interrupt and measure the
    // monitor's handling cost (trap + mount).
    bench.soc.iopmp().authorize(kColdDevice, kColdWindow, 64, Perm::Read);
    return bench.monitor.serviceInterrupts(0);
}

HotColdResult
runHotCold(const HotColdConfig &cfg)
{
    HotColdResult result;
    result.baseline_cycles =
        runArm(cfg, Arm::BothHot, nullptr, nullptr);
    result.hot_cycles =
        runArm(cfg, cfg.matched ? Arm::Matched : Arm::Mismatched,
               &result.cold_switches, &result.sid_misses);
    result.hot_throughput_pct =
        result.hot_cycles > 0
            ? 100.0 * static_cast<double>(result.baseline_cycles) /
                  static_cast<double>(result.hot_cycles)
            : 0.0;
    return result;
}

} // namespace wl
} // namespace siopmp
