/**
 * @file
 * Malicious device model for the threat-model experiments (§2.1, §3.2).
 * Implements the attack classes the paper defends against:
 *
 *  - ArbitraryScan: probe a physical address range with DMA reads and
 *    writes, hunting for secrets or corruptible state (classic DMA
 *    attack over PCIe/Thunderbolt-style connectivity).
 *  - Replay: record a legitimate write the device was once allowed to
 *    perform, then re-issue it later after the mapping was revoked —
 *    the attack memory encryption alone cannot stop.
 *  - RingTamper: overwrite another device's descriptor ring to
 *    redirect its DMA (the Thunderclap-style shared-structure attack).
 *
 * The device records which of its attack accesses appeared to succeed
 * (non-masked, non-denied data); tests assert the count is zero under
 * sIOPMP protection.
 */

#ifndef DEVICES_MALICIOUS_HH
#define DEVICES_MALICIOUS_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "devices/device.hh"

namespace siopmp {
namespace dev {

enum class AttackKind { ArbitraryScan, Replay, RingTamper };

struct AttackPlan {
    AttackKind kind = AttackKind::ArbitraryScan;
    Addr target_base = 0;   //!< region to probe / ring to tamper
    Addr target_size = 0;
    unsigned probes = 16;   //!< number of attack accesses
    std::uint64_t payload = 0x4141'4141'4141'4141ULL;
};

class MaliciousDevice : public DmaMaster
{
  public:
    MaliciousDevice(std::string name, DeviceId device, bus::Link *link);

    void startAttack(const AttackPlan &plan, Cycle now);
    bool done() const;

    /** Reads that returned non-zero, non-denied data (leaks). */
    std::uint64_t leakedWords() const { return leaked_; }
    /** Writes acknowledged without a bus error. An ack alone does NOT
     * prove success under packet masking; tests must also check the
     * target memory. */
    std::uint64_t unflaggedWrites() const { return unflagged_writes_; }
    std::uint64_t deniedAttacks() const { return denied_attacks_; }

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

  private:
    struct Probe {
        Addr addr;
        bool is_write;
    };

    AttackPlan plan_;
    std::deque<Probe> queue_;
    std::unordered_map<std::uint64_t, bool> outstanding_; //!< txn->write
    bool write_inflight_ = false;
    std::uint64_t leaked_ = 0;
    std::uint64_t unflagged_writes_ = 0;
    std::uint64_t denied_attacks_ = 0;
};

} // namespace dev
} // namespace siopmp

#endif // DEVICES_MALICIOUS_HH
