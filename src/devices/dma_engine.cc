/**
 * @file
 * DmaEngine implementation.
 */

#include "devices/dma_engine.hh"

#include <utility>

#include "sim/logging.hh"

namespace siopmp {
namespace dev {

DmaEngine::DmaEngine(std::string name, DeviceId device, bus::Link *link)
    : DmaMaster(std::move(name), device, link)
{
}

void
DmaEngine::start(const DmaJob &job, Cycle now)
{
    SIOPMP_ASSERT(done_, "DMA job started while another is active");
    job_ = job;
    if (!job_.segments.empty()) {
        SIOPMP_ASSERT(job_.kind != DmaKind::Copy,
                      "scatter-gather copy jobs are not supported");
        job_.bytes = 0;
        for (const auto &[addr, len] : job_.segments) {
            SIOPMP_ASSERT(len > 0 &&
                              len % (job.burst_beats * bus::kBeatBytes) ==
                                  0,
                          "segment size must be a burst multiple");
            job_.bytes += len;
        }
    }
    SIOPMP_ASSERT(job_.bytes % (job.burst_beats * bus::kBeatBytes) == 0,
                  "job size must be a multiple of the burst size");
    done_ = job_.bytes == 0;
    aborted_ = false;
    started_at_ = now;
    completed_at_ = now;
    issued_bytes_ = 0;
    completed_bytes_ = 0;
    outstanding_.clear();
    write_queue_.clear();
    writing_ = false;
    write_beat_ = 0;
    wake();
}

void
DmaEngine::setDeviceId(DeviceId device)
{
    SIOPMP_ASSERT(done_ && outstanding_.empty(),
                  "device id rebound with a job in flight");
    device_ = device;
}

void
DmaEngine::abort(Cycle now)
{
    if (done_)
        return;
    aborted_ = true;
    // Truncate the stream at what has already been issued. A pure
    // write burst mid-emission is not yet counted in issued_bytes_,
    // so keep its bytes in the job: issueNext() finishes its beats.
    job_.bytes = issued_bytes_;
    if (writing_ && job_.kind != DmaKind::Copy) {
        job_.bytes += static_cast<std::uint64_t>(job_.burst_beats) *
                      bus::kBeatBytes;
    }
    // Staged copy write-outs are dropped: their reads completed, the
    // writes never start, so credit the bytes now.
    for (const auto &out : write_queue_) {
        completed_bytes_ += static_cast<std::uint64_t>(out.beats) *
                            bus::kBeatBytes;
    }
    write_queue_.clear();
    if (!writing_ && outstanding_.empty()) {
        done_ = true;
        completed_at_ = now;
    }
    wake();
}

bool
DmaEngine::quiescent(Cycle) const
{
    if (!link_->d.settled())
        return false; // responses to collect
    if (done_)
        return true;
    // Any issuable work keeps the engine hot so it polls through
    // A-channel backpressure; once everything issued is merely awaiting
    // responses, the D-channel wake re-arms it.
    if (writing_ || !write_queue_.empty())
        return false;
    if (issued_bytes_ < job_.bytes &&
        outstanding_.size() < job_.max_outstanding) {
        return false;
    }
    return true;
}

bool
DmaEngine::done() const
{
    return done_;
}

Addr
DmaEngine::streamAddr(Addr base, std::uint64_t offset) const
{
    if (job_.segments.empty())
        return base + offset;
    for (const auto &[addr, len] : job_.segments) {
        if (offset < len)
            return addr + offset;
        offset -= len;
    }
    panic("stream offset beyond the scatter-gather list");
}

void
DmaEngine::issueNext(Cycle now)
{
    if (issued_bytes_ >= job_.bytes)
        return;
    const std::uint64_t burst_bytes =
        static_cast<std::uint64_t>(job_.burst_beats) * bus::kBeatBytes;

    if (job_.kind == DmaKind::Read || job_.kind == DmaKind::Copy) {
        if (outstanding_.size() >= job_.max_outstanding)
            return;
        const Addr addr = streamAddr(job_.src, issued_bytes_);
        if (!tryIssueGet(addr, job_.burst_beats))
            return;
        Outstanding out;
        out.kind = DmaKind::Read;
        out.addr = addr;
        out.beats = job_.burst_beats;
        out.issued_at = now;
        outstanding_.emplace(last_get_txn_, out);
        issued_bytes_ += burst_bytes;
        return;
    }

    // Pure write job: stream one burst's beats contiguously.
    if (!writing_) {
        if (outstanding_.size() >= job_.max_outstanding)
            return;
        writing_ = true;
        write_beat_ = 0;
        write_txn_ = allocTxn();
        write_addr_ = streamAddr(job_.dst, issued_bytes_);
        Outstanding out;
        out.kind = DmaKind::Write;
        out.addr = write_addr_;
        out.beats = job_.burst_beats;
        out.issued_at = now;
        outstanding_.emplace(write_txn_, out);
    }
    const std::uint64_t data =
        job_.fill_pattern + issued_bytes_ / burst_bytes + write_beat_;
    if (!tryIssuePutBeat(write_addr_, write_beat_, job_.burst_beats, data,
                         write_txn_)) {
        return;
    }
    if (++write_beat_ == job_.burst_beats) {
        writing_ = false;
        issued_bytes_ += burst_bytes;
    }
}

void
DmaEngine::issueWrites(Cycle now)
{
    // Copy jobs: write out staged read data, one burst at a time.
    if (job_.kind != DmaKind::Copy)
        return;
    if (!writing_) {
        if (write_queue_.empty())
            return;
        if (outstanding_.size() >= job_.max_outstanding)
            return;
        write_current_ = write_queue_.front();
        write_queue_.pop_front();
        writing_ = true;
        write_beat_ = 0;
        write_txn_ = allocTxn();
        write_addr_ = job_.dst + (write_current_.addr - job_.src);
        Outstanding out;
        out.kind = DmaKind::Write;
        out.addr = write_addr_;
        out.beats = write_current_.beats;
        out.issued_at = now;
        outstanding_.emplace(write_txn_, out);
    }
    const std::uint64_t data = write_beat_ < write_current_.data.size()
                                   ? write_current_.data[write_beat_]
                                   : 0;
    if (!tryIssuePutBeat(write_addr_, write_beat_, write_current_.beats,
                         data, write_txn_)) {
        return;
    }
    if (++write_beat_ == write_current_.beats)
        writing_ = false;
}

void
DmaEngine::collectResponses(Cycle now)
{
    // Consume at most one D beat per cycle (one response port).
    if (link_->d.empty())
        return;
    const bus::Beat beat = link_->d.front();
    link_->d.pop();
    accountResponse(beat);

    auto it = outstanding_.find(beat.txn);
    if (it == outstanding_.end())
        return; // stale response for a reset job
    Outstanding &out = it->second;

    const std::uint64_t burst_bytes =
        static_cast<std::uint64_t>(out.beats) * bus::kBeatBytes;

    if (beat.denied) {
        // Bus-error termination: the burst is over immediately.
        out.terminated = true;
        completed_bytes_ += burst_bytes;
        ++bursts_completed_;
        stats_.average("burst_latency").sample(
            static_cast<double>(now - out.issued_at));
        if (burst_observer_)
            burst_observer_(now - out.issued_at, true);
        outstanding_.erase(it);
    } else if (beat.opcode == bus::Opcode::AccessAckData) {
        out.data.push_back(beat.data);
        ++out.received;
        if (beat.last) {
            ++bursts_completed_;
            stats_.average("burst_latency").sample(
                static_cast<double>(now - out.issued_at));
            if (burst_observer_)
                burst_observer_(now - out.issued_at, false);
            if (job_.kind == DmaKind::Copy && !aborted_) {
                write_queue_.push_back(out);
            } else {
                // Aborted copies count the read as the burst's end:
                // the write-out never starts.
                completed_bytes_ += burst_bytes;
            }
            outstanding_.erase(it);
        }
    } else if (beat.opcode == bus::Opcode::AccessAck) {
        completed_bytes_ += burst_bytes;
        ++bursts_completed_;
        stats_.average("burst_latency").sample(
            static_cast<double>(now - out.issued_at));
        if (burst_observer_)
            burst_observer_(now - out.issued_at, false);
        outstanding_.erase(it);
    }

    if (jobActive() && completed_bytes_ >= job_.bytes) {
        done_ = true;
        completed_at_ = now;
    }
}

void
DmaEngine::evaluate(Cycle now)
{
    if (!done_) {
        issueNext(now);
        issueWrites(now);
    }
    collectResponses(now);
}

void
DmaEngine::advance(Cycle now)
{
    DmaMaster::advance(now);
}

} // namespace dev
} // namespace siopmp
