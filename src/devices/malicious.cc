/**
 * @file
 * MaliciousDevice implementation.
 */

#include "devices/malicious.hh"

#include <utility>

#include "sim/logging.hh"

namespace siopmp {
namespace dev {

MaliciousDevice::MaliciousDevice(std::string name, DeviceId device,
                                 bus::Link *link)
    : DmaMaster(std::move(name), device, link)
{
}

void
MaliciousDevice::startAttack(const AttackPlan &plan, Cycle)
{
    plan_ = plan;
    queue_.clear();

    const Addr stride =
        plan.probes > 0
            ? std::max<Addr>(bus::kBeatBytes,
                             alignDown(plan.target_size /
                                           std::max(1u, plan.probes),
                                       bus::kBeatBytes))
            : bus::kBeatBytes;

    switch (plan.kind) {
      case AttackKind::ArbitraryScan:
        // Alternate read/write probes across the region.
        for (unsigned i = 0; i < plan.probes; ++i) {
            queue_.push_back(
                Probe{plan.target_base + i * stride, (i % 2) == 1});
        }
        break;
      case AttackKind::Replay:
        // Re-issue the same write to the same (stale) address.
        for (unsigned i = 0; i < plan.probes; ++i)
            queue_.push_back(Probe{plan.target_base, true});
        break;
      case AttackKind::RingTamper:
        // Overwrite consecutive descriptor slots.
        for (unsigned i = 0; i < plan.probes; ++i) {
            queue_.push_back(
                Probe{plan.target_base + i * 16, true});
        }
        break;
    }
    wake();
}

bool
MaliciousDevice::quiescent(Cycle) const
{
    // Outstanding probes are consumed only from the D channel, whose
    // wake-on-push re-arms the device; unissued probes keep it hot so
    // it polls through A-channel backpressure.
    return queue_.empty() && link_->d.settled();
}

bool
MaliciousDevice::done() const
{
    return queue_.empty() && outstanding_.empty();
}

void
MaliciousDevice::evaluate(Cycle)
{
    // Issue at most one probe per cycle.
    if (!queue_.empty()) {
        const Probe probe = queue_.front();
        if (probe.is_write) {
            const std::uint64_t txn = next_txn_;
            if (tryIssuePutBeat(probe.addr, 0, 1, plan_.payload, txn)) {
                ++next_txn_;
                outstanding_.emplace(txn, true);
                queue_.pop_front();
            }
        } else {
            if (tryIssueGet(probe.addr, 1)) {
                outstanding_.emplace(last_get_txn_, false);
                queue_.pop_front();
            }
        }
    }

    // Collect responses.
    if (link_->d.empty())
        return;
    const bus::Beat beat = link_->d.front();
    link_->d.pop();
    accountResponse(beat);

    auto it = outstanding_.find(beat.txn);
    if (it == outstanding_.end())
        return;
    const bool was_write = it->second;
    outstanding_.erase(it);

    if (beat.denied) {
        ++denied_attacks_;
        return;
    }
    if (was_write) {
        ++unflagged_writes_;
    } else if (beat.data != 0) {
        // Any non-zero data back from a probe is a potential leak.
        ++leaked_;
    }
}

void
MaliciousDevice::advance(Cycle now)
{
    DmaMaster::advance(now);
}

} // namespace dev
} // namespace siopmp
