/**
 * @file
 * Programmable DMA engine (Table 2's "DMA Device": a dummy node for
 * memory copy). A job describes a stream of fixed-size bursts — pure
 * reads, pure writes or read-then-write copies — with a configurable
 * outstanding-transaction limit:
 *
 *  - max_outstanding = 1 reproduces Fig 11's worst case (consecutive
 *    bursts, no pipelining between transactions);
 *  - larger limits enable the outstanding/out-of-order behaviour that
 *    saturates the bus for Fig 12.
 *
 * The engine measures total job latency and per-burst latency and
 * performs genuinely functional transfers (copy jobs move real bytes
 * through the simulated memory).
 */

#ifndef DEVICES_DMA_ENGINE_HH
#define DEVICES_DMA_ENGINE_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "devices/device.hh"

namespace siopmp {
namespace dev {

/** What a DMA job does. */
enum class DmaKind { Read, Write, Copy };

struct DmaJob {
    DmaKind kind = DmaKind::Read;
    Addr src = 0;           //!< read base (Read/Copy)
    Addr dst = 0;           //!< write base (Write/Copy)
    std::uint64_t bytes = 0;
    unsigned burst_beats = bus::kBurstBeats;
    unsigned max_outstanding = 1;
    std::uint64_t fill_pattern = 0xdeadbeefcafef00dULL; //!< Write data

    /**
     * Scatter-gather list (§2 motivation: DMA controllers support
     * 512-1024 scatter buffers, hence the >1000-entry requirement).
     * When non-empty it overrides src/bytes (Read) or dst/bytes
     * (Write): the engine streams each {addr, bytes} segment in order.
     * Segment sizes must be multiples of the burst size. Copy jobs do
     * not take a scatter list.
     */
    std::vector<std::pair<Addr, std::uint64_t>> segments;
};

class DmaEngine : public DmaMaster
{
  public:
    DmaEngine(std::string name, DeviceId device, bus::Link *link);

    /** Start a job; any previous job must have completed. */
    void start(const DmaJob &job, Cycle now);

    /**
     * Rebind the engine to a different source device id. Fleet
     * workloads reuse one engine per port across many short-lived
     * tenants instead of rebuilding the SoC per tenant; only legal
     * between jobs (no beats in flight carrying the old id).
     */
    void setDeviceId(DeviceId device);

    /**
     * Abort the current job: stop issuing new bursts and let what is
     * already on the bus drain. A half-emitted write burst still
     * finishes its beats (the fabric owns a partial burst and must see
     * `last`); staged copy write-outs are dropped. done() becomes true
     * once every in-flight response lands — tenant teardown races this
     * drain in the churn workload.
     */
    void abort(Cycle now);

    /**
     * Per-burst completion hook: called with the burst's latency and
     * whether it was denied, at the same points the burst_latency stat
     * samples. Lets a workload keep its own deterministic per-port
     * latency series without a registry detour.
     */
    void
    setBurstObserver(std::function<void(Cycle latency, bool denied)> fn)
    {
        burst_observer_ = std::move(fn);
    }

    bool done() const;

    /** Cycle the final response arrived (valid once done()). */
    Cycle completedAt() const { return completed_at_; }
    Cycle startedAt() const { return started_at_; }

    /** Total burst transactions completed over the engine's life. */
    std::uint64_t burstsCompleted() const { return bursts_completed_; }

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

  private:
    struct Outstanding {
        DmaKind kind;
        Addr addr;       //!< burst base
        unsigned beats;
        unsigned received = 0; //!< data/ack beats so far
        Cycle issued_at = 0;
        std::deque<std::uint64_t> data; //!< read data (Copy staging)
        bool terminated = false;        //!< denied/terminated early
    };

    void issueNext(Cycle now);
    void collectResponses(Cycle now);
    void issueWrites(Cycle now);

    bool jobActive() const { return job_.bytes > 0 && !done_; }

    /** Map a linear stream offset to a bus address through the
     * scatter-gather list (identity when the list is empty). */
    Addr streamAddr(Addr base, std::uint64_t offset) const;

    DmaJob job_;
    bool done_ = true;
    bool aborted_ = false;
    Cycle started_at_ = 0;
    Cycle completed_at_ = 0;
    std::function<void(Cycle, bool)> burst_observer_;

    std::uint64_t issued_bytes_ = 0;    //!< request stream progress
    std::uint64_t completed_bytes_ = 0; //!< fully-acknowledged bytes

    std::unordered_map<std::uint64_t, Outstanding> outstanding_;
    std::uint64_t bursts_completed_ = 0;

    // Copy staging: read bursts that finished and await write-out.
    std::deque<Outstanding> write_queue_;
    // In-progress write burst emission.
    bool writing_ = false;
    Outstanding write_current_;
    unsigned write_beat_ = 0;
    std::uint64_t write_txn_ = 0;
    Addr write_addr_ = 0;
};

} // namespace dev
} // namespace siopmp

#endif // DEVICES_DMA_ENGINE_HH
