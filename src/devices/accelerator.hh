/**
 * @file
 * NVDLA-like deep-learning accelerator model (Table 2). Executes
 * "layer" jobs: for each output tile it streams a weight tile and an
 * input tile from memory (large sequential read bursts), applies a
 * dummy MAC reduction, and writes the output tile back. The traffic
 * pattern — long read bursts with high outstanding counts punctuated
 * by write bursts — is what a real accelerator presents to the IOPMP.
 */

#ifndef DEVICES_ACCELERATOR_HH
#define DEVICES_ACCELERATOR_HH

#include <deque>
#include <unordered_map>

#include "devices/device.hh"

namespace siopmp {
namespace dev {

struct LayerJob {
    Addr weights = 0;   //!< weight tensor base
    Addr inputs = 0;    //!< activation tensor base
    Addr outputs = 0;   //!< output tensor base
    unsigned tiles = 4; //!< number of output tiles
    unsigned tile_bytes = 1024; //!< per-tensor bytes per tile
    unsigned max_outstanding = 4;
};

class Accelerator : public DmaMaster
{
  public:
    Accelerator(std::string name, DeviceId device, bus::Link *link);

    void start(const LayerJob &job, Cycle now);
    bool done() const { return done_; }
    Cycle completedAt() const { return completed_at_; }

    /** Reduction of everything read (functional check in tests). */
    std::uint64_t accumulator() const { return accumulator_; }
    std::uint64_t tilesCompleted() const { return tiles_done_; }

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

  private:
    enum class Phase { ReadWeights, ReadInputs, WriteOutput };

    struct Outstanding {
        bool is_weight = false;
    };

    void issue(Cycle now);
    void collect(Cycle now);
    void startTile();

    LayerJob job_;
    bool done_ = true;
    Cycle completed_at_ = 0;

    unsigned tile_ = 0;
    Phase phase_ = Phase::ReadWeights;
    std::uint64_t read_issued_ = 0;    //!< bytes requested this phase
    std::uint64_t read_received_ = 0;  //!< bytes received this phase
    std::unordered_map<std::uint64_t, Outstanding> outstanding_;

    // Output write stream.
    unsigned write_beat_ = 0;
    std::uint64_t write_issued_ = 0;
    std::uint64_t write_txn_ = 0;
    bool write_burst_open_ = false;
    unsigned write_acks_pending_ = 0;

    std::uint64_t accumulator_ = 0;
    std::uint64_t tiles_done_ = 0;
};

} // namespace dev
} // namespace siopmp

#endif // DEVICES_ACCELERATOR_HH
