/**
 * @file
 * Accelerator implementation.
 */

#include "devices/accelerator.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace siopmp {
namespace dev {

Accelerator::Accelerator(std::string name, DeviceId device, bus::Link *link)
    : DmaMaster(std::move(name), device, link)
{
}

void
Accelerator::start(const LayerJob &job, Cycle now)
{
    SIOPMP_ASSERT(done_, "accelerator job started while active");
    SIOPMP_ASSERT(job.tile_bytes % (bus::kBurstBeats * bus::kBeatBytes) == 0,
                  "tile size must be a multiple of the burst size");
    job_ = job;
    done_ = job.tiles == 0;
    completed_at_ = now;
    tile_ = 0;
    tiles_done_ = 0;
    accumulator_ = 0;
    outstanding_.clear();
    startTile();
    wake();
}

bool
Accelerator::quiescent(Cycle) const
{
    // An active layer keeps the accelerator hot across all phases
    // (issue stalls, read waits, ack waits); only a finished layer with
    // drained responses sleeps.
    return done_ && link_->d.settled();
}

void
Accelerator::startTile()
{
    phase_ = Phase::ReadWeights;
    read_issued_ = 0;
    read_received_ = 0;
    write_issued_ = 0;
    write_beat_ = 0;
    write_burst_open_ = false;
    write_acks_pending_ = 0;
}

void
Accelerator::issue(Cycle)
{
    if (done_)
        return;

    const std::uint64_t burst_bytes =
        static_cast<std::uint64_t>(bus::kBurstBeats) * bus::kBeatBytes;

    if (phase_ == Phase::ReadWeights || phase_ == Phase::ReadInputs) {
        if (read_issued_ >= job_.tile_bytes)
            return; // wait for data
        if (outstanding_.size() >= job_.max_outstanding)
            return;
        const bool weights = phase_ == Phase::ReadWeights;
        const Addr base = weights ? job_.weights : job_.inputs;
        const Addr addr = base +
                          static_cast<Addr>(tile_) * job_.tile_bytes +
                          read_issued_;
        if (!tryIssueGet(addr, bus::kBurstBeats))
            return;
        outstanding_.emplace(last_get_txn_, Outstanding{weights});
        read_issued_ += burst_bytes;
        return;
    }

    // WriteOutput: stream bursts of the accumulated value.
    if (write_issued_ >= job_.tile_bytes)
        return; // waiting for acks
    if (!write_burst_open_) {
        write_txn_ = next_txn_++;
        write_beat_ = 0;
        write_burst_open_ = true;
    }
    const Addr addr = job_.outputs +
                      static_cast<Addr>(tile_) * job_.tile_bytes +
                      write_issued_ +
                      static_cast<Addr>(write_beat_) * bus::kBeatBytes;
    // Address is supplied per-beat by makePut from the burst base:
    const Addr burst_base = job_.outputs +
                            static_cast<Addr>(tile_) * job_.tile_bytes +
                            write_issued_;
    (void)addr;
    if (!tryIssuePutBeat(burst_base, write_beat_, bus::kBurstBeats,
                         accumulator_ + write_beat_, write_txn_)) {
        return;
    }
    if (++write_beat_ == bus::kBurstBeats) {
        write_burst_open_ = false;
        ++write_acks_pending_;
        write_issued_ += burst_bytes;
    }
}

void
Accelerator::collect(Cycle now)
{
    if (link_->d.empty())
        return;
    const bus::Beat beat = link_->d.front();
    link_->d.pop();
    accountResponse(beat);

    if (beat.opcode == bus::Opcode::AccessAckData || beat.denied) {
        auto it = outstanding_.find(beat.txn);
        if (it != outstanding_.end()) {
            if (!beat.denied) {
                // Dummy MAC: fold the data into the accumulator.
                accumulator_ += beat.data * (it->second.is_weight ? 3 : 1);
                read_received_ += bus::kBeatBytes;
            } else {
                // Terminated burst: account the remainder as received
                // zeros so the tile can finish.
                read_received_ += bus::kBurstBeats * bus::kBeatBytes;
            }
            if (beat.last)
                outstanding_.erase(it);
        }
        if ((phase_ == Phase::ReadWeights ||
             phase_ == Phase::ReadInputs) &&
            read_received_ >= job_.tile_bytes && outstanding_.empty()) {
            if (phase_ == Phase::ReadWeights) {
                phase_ = Phase::ReadInputs;
            } else {
                phase_ = Phase::WriteOutput;
            }
            read_issued_ = 0;
            read_received_ = 0;
        }
        return;
    }

    if (beat.opcode == bus::Opcode::AccessAck &&
        phase_ == Phase::WriteOutput) {
        if (write_acks_pending_ > 0)
            --write_acks_pending_;
        if (write_issued_ >= job_.tile_bytes && write_acks_pending_ == 0 &&
            !write_burst_open_) {
            ++tiles_done_;
            if (++tile_ >= job_.tiles) {
                done_ = true;
                completed_at_ = now;
            } else {
                startTile();
            }
        }
    }
}

void
Accelerator::evaluate(Cycle now)
{
    issue(now);
    collect(now);
}

void
Accelerator::advance(Cycle now)
{
    DmaMaster::advance(now);
}

} // namespace dev
} // namespace siopmp
