/**
 * @file
 * DmaMaster implementation.
 */

#include "devices/device.hh"

#include <utility>

#include "sim/logging.hh"

namespace siopmp {
namespace dev {

DmaMaster::DmaMaster(std::string name, DeviceId device, bus::Link *link)
    : Tickable(std::move(name)),
      device_(device),
      link_(link),
      stats_(this->name())
{
    SIOPMP_ASSERT(link_ != nullptr, "device needs a link");
    link_->d.bindWake(this);
}

bool
DmaMaster::tryIssueGet(Addr addr, unsigned beats)
{
    if (!link_->a.canPush())
        return false;
    last_get_txn_ = allocTxn();
    link_->a.push(bus::makeGet(addr, beats, device_, last_get_txn_));
    ++stats_.scalar("gets_issued");
    return true;
}

bool
DmaMaster::tryIssuePutBeat(Addr addr, unsigned idx, unsigned beats,
                           std::uint64_t data, std::uint64_t txn,
                           std::uint8_t strobe)
{
    if (!link_->a.canPush())
        return false;
    link_->a.push(
        bus::makePut(addr, idx, beats, data, device_, txn, strobe));
    ++stats_.scalar("put_beats_issued");
    return true;
}

void
DmaMaster::accountResponse(const bus::Beat &beat)
{
    if (beat.denied) {
        ++denied_;
        ++stats_.scalar("denied");
        return;
    }
    if (beat.opcode == bus::Opcode::AccessAckData) {
        bytes_ += bus::kBeatBytes;
        ++stats_.scalar("read_beats");
    } else if (beat.opcode == bus::Opcode::AccessAck) {
        ++stats_.scalar("write_acks");
    }
}

void
DmaMaster::advance(Cycle)
{
    link_->d.clock();
}

} // namespace dev
} // namespace siopmp
