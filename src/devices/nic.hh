/**
 * @file
 * IceNet-like NIC model (Table 2). Works against in-memory descriptor
 * rings like a real driver-facing NIC:
 *
 *  TX: the driver posts descriptors {buffer addr, length}; the NIC
 *      DMA-reads each descriptor, then DMA-reads the payload and
 *      "transmits" it (accumulating tx bytes), then writes a
 *      completion word back into the descriptor.
 *
 *  RX: incoming packets (injected by the testbench or a workload
 *      generator) consume posted RX descriptors; the NIC DMA-writes
 *      the payload into the posted buffer and writes a completion with
 *      the received length.
 *
 * All descriptor and payload traffic flows through the checker as
 * ordinary DMA, so a NIC bound to a TEE can only reach its granted
 * regions — including sub-page packet buffers (§2.2's NIC example:
 * RX region, TX region, control region).
 */

#ifndef DEVICES_NIC_HH
#define DEVICES_NIC_HH

#include <deque>
#include <unordered_set>
#include <vector>

#include "devices/device.hh"

namespace siopmp {
namespace dev {

/** Descriptor layout: two 64-bit words. */
struct NicDescriptor {
    static constexpr Addr kBytes = 16;
    Addr buffer = 0;        //!< payload buffer physical address
    std::uint64_t len = 0;  //!< word1 low 32: length; bit 63: done
};

struct NicConfig {
    Addr tx_ring = 0;       //!< TX descriptor ring base
    unsigned tx_ring_entries = 64;
    Addr rx_ring = 0;       //!< RX descriptor ring base
    unsigned rx_ring_entries = 64;
};

class Nic : public DmaMaster
{
  public:
    Nic(std::string name, DeviceId device, bus::Link *link, NicConfig cfg);

    /** Driver side: descriptors [tail, tail+count) are ready to send. */
    void postTx(unsigned count)
    {
        tx_posted_ += count;
        wake();
    }

    /** Driver side: RX descriptors available for incoming packets. */
    void postRx(unsigned count)
    {
        rx_posted_ += count;
        wake();
    }

    /** Network side: a packet arrives (payload filled with @p fill). */
    void injectRxPacket(unsigned bytes, std::uint8_t fill = 0xab);

    std::uint64_t txBytes() const { return tx_bytes_; }
    std::uint64_t txPackets() const { return tx_packets_; }
    std::uint64_t rxBytes() const { return rx_bytes_; }
    std::uint64_t rxPackets() const { return rx_packets_; }
    std::uint64_t rxDropped() const { return rx_dropped_; }

    /** True iff no work is pending or in flight. */
    bool idle() const;

    void evaluate(Cycle now) override;
    void advance(Cycle now) override;
    bool quiescent(Cycle now) const override;

  private:
    enum class TxState { Idle, FetchDesc, FetchPayload, WriteBack };
    enum class RxState { Idle, FetchDesc, WritePayload, WriteBack };

    void tickTx(Cycle now);
    void tickRx(Cycle now);
    void collect(Cycle now);

    Addr txDescAddr(unsigned idx) const
    {
        return cfg_.tx_ring + (idx % cfg_.tx_ring_entries) *
                                  NicDescriptor::kBytes;
    }

    Addr rxDescAddr(unsigned idx) const
    {
        return cfg_.rx_ring + (idx % cfg_.rx_ring_entries) *
                                  NicDescriptor::kBytes;
    }

    NicConfig cfg_;

    // TX engine.
    TxState tx_state_ = TxState::Idle;
    unsigned tx_head_ = 0;   //!< next descriptor to process
    unsigned tx_posted_ = 0; //!< descriptors ready beyond head
    NicDescriptor tx_desc_;
    std::uint64_t tx_desc_txn_ = 0;
    std::unordered_set<std::uint64_t> tx_payload_txns_;
    Addr tx_payload_next_ = 0;     //!< next burst address to request
    std::uint64_t tx_payload_remaining_ = 0;
    std::uint64_t tx_payload_outstanding_ = 0;
    std::uint64_t tx_wb_txn_ = 0;
    bool tx_wb_sent_ = false;
    bool tx_aborted_ = false;

    // RX engine.
    struct RxPacket {
        unsigned bytes;
        std::uint8_t fill;
    };

    RxState rx_state_ = RxState::Idle;
    unsigned rx_head_ = 0;
    unsigned rx_posted_ = 0;
    std::deque<RxPacket> rx_pending_packets_; //!< injected packets
    std::uint8_t rx_fill_ = 0; //!< fill byte of the packet in flight
    NicDescriptor rx_desc_;
    std::uint64_t rx_desc_txn_ = 0;
    unsigned rx_cur_bytes_ = 0;
    Addr rx_write_next_ = 0;
    std::uint64_t rx_write_remaining_ = 0;
    unsigned rx_write_beat_ = 0;
    std::uint64_t rx_payload_txn_ = 0;
    bool rx_burst_open_ = false;
    std::uint64_t rx_acks_outstanding_ = 0;
    std::uint64_t rx_wb_txn_ = 0;
    bool rx_wb_sent_ = false;

    // Counters.
    std::uint64_t tx_bytes_ = 0;
    std::uint64_t tx_packets_ = 0;
    std::uint64_t rx_bytes_ = 0;
    std::uint64_t rx_packets_ = 0;
    std::uint64_t rx_dropped_ = 0;
};

} // namespace dev
} // namespace siopmp

#endif // DEVICES_NIC_HH
