/**
 * @file
 * Nic implementation.
 */

#include "devices/nic.hh"

#include <utility>

#include "sim/logging.hh"

namespace siopmp {
namespace dev {

namespace {

std::uint64_t
repeatByte(std::uint8_t b)
{
    std::uint64_t w = b;
    w |= w << 8;
    w |= w << 16;
    w |= w << 32;
    return w;
}

unsigned
beatsFor(std::uint64_t bytes)
{
    return static_cast<unsigned>(
        (bytes + bus::kBeatBytes - 1) / bus::kBeatBytes);
}

} // namespace

Nic::Nic(std::string name, DeviceId device, bus::Link *link, NicConfig cfg)
    : DmaMaster(std::move(name), device, link), cfg_(cfg)
{
}

bool
Nic::idle() const
{
    return tx_state_ == TxState::Idle && rx_state_ == RxState::Idle &&
           tx_posted_ == 0 && rx_pending_packets_.empty();
}

void
Nic::injectRxPacket(unsigned bytes, std::uint8_t fill)
{
    rx_pending_packets_.push_back(RxPacket{bytes, fill});
    wake();
}

bool
Nic::quiescent(Cycle) const
{
    // Mid-packet wait states keep the NIC hot (conservative: the D wake
    // would cover them, but polling through stalls is simpler to reason
    // about); only a truly idle NIC with drained responses sleeps.
    return idle() && link_->d.settled();
}

void
Nic::tickTx(Cycle)
{
    switch (tx_state_) {
      case TxState::Idle:
        if (tx_posted_ == 0)
            return;
        if (!tryIssueGet(txDescAddr(tx_head_), 2))
            return;
        tx_desc_txn_ = last_get_txn_;
        tx_desc_ = NicDescriptor{};
        tx_state_ = TxState::FetchDesc;
        return;

      case TxState::FetchDesc:
        return; // waiting for descriptor beats in collect()

      case TxState::FetchPayload: {
        if (tx_payload_remaining_ == 0)
            return; // waiting for data in collect()
        const unsigned beats =
            std::min<std::uint64_t>(bus::kBurstBeats,
                                    beatsFor(tx_payload_remaining_));
        if (!tryIssueGet(tx_payload_next_, beats))
            return;
        tx_payload_txns_.insert(last_get_txn_);
        ++tx_payload_outstanding_;
        const std::uint64_t burst_bytes =
            static_cast<std::uint64_t>(beats) * bus::kBeatBytes;
        tx_payload_next_ += burst_bytes;
        tx_payload_remaining_ -=
            std::min<std::uint64_t>(burst_bytes, tx_payload_remaining_);
        return;
      }

      case TxState::WriteBack:
        if (tx_wb_sent_)
            return; // waiting for the ack
        {
            const std::uint64_t done_word =
                (tx_desc_.len & 0xffff'ffffULL) | (std::uint64_t{1} << 63) |
                (tx_aborted_ ? (std::uint64_t{1} << 62) : 0);
            const std::uint64_t txn = next_txn_;
            if (!tryIssuePutBeat(txDescAddr(tx_head_) + 8, 0, 1, done_word,
                                 txn)) {
                return;
            }
            ++next_txn_;
            tx_wb_txn_ = txn;
            tx_wb_sent_ = true;
        }
        return;
    }
}

void
Nic::tickRx(Cycle)
{
    switch (rx_state_) {
      case RxState::Idle:
        if (rx_pending_packets_.empty())
            return;
        if (rx_posted_ == 0) {
            // No buffer available: drop (like a real NIC under
            // descriptor exhaustion).
            rx_pending_packets_.pop_front();
            ++rx_dropped_;
            return;
        }
        if (!tryIssueGet(rxDescAddr(rx_head_), 2))
            return;
        rx_desc_txn_ = last_get_txn_;
        rx_desc_ = NicDescriptor{};
        rx_cur_bytes_ = rx_pending_packets_.front().bytes;
        rx_fill_ = rx_pending_packets_.front().fill;
        rx_pending_packets_.pop_front();
        rx_state_ = RxState::FetchDesc;
        return;

      case RxState::FetchDesc:
        return; // waiting for descriptor in collect()

      case RxState::WritePayload: {
        if (rx_write_remaining_ == 0)
            return; // acks pending; collect() advances state
        if (!rx_burst_open_) {
            rx_write_beat_ = 0;
            rx_payload_txn_ = next_txn_++;
            rx_burst_open_ = true;
        }
        const unsigned beats =
            std::min<std::uint64_t>(bus::kBurstBeats,
                                    beatsFor(rx_write_remaining_));
        if (!tryIssuePutBeat(rx_write_next_, rx_write_beat_, beats,
                             repeatByte(rx_fill_), rx_payload_txn_)) {
            return;
        }
        if (++rx_write_beat_ == beats) {
            rx_burst_open_ = false;
            ++rx_acks_outstanding_;
            const std::uint64_t burst_bytes =
                static_cast<std::uint64_t>(beats) * bus::kBeatBytes;
            rx_write_next_ += burst_bytes;
            rx_write_remaining_ -=
                std::min<std::uint64_t>(burst_bytes, rx_write_remaining_);
        }
        return;
      }

      case RxState::WriteBack:
        if (rx_wb_sent_)
            return;
        {
            const std::uint64_t done_word =
                rx_cur_bytes_ | (std::uint64_t{1} << 63);
            const std::uint64_t txn = next_txn_;
            if (!tryIssuePutBeat(rxDescAddr(rx_head_) + 8, 0, 1, done_word,
                                 txn)) {
                return;
            }
            ++next_txn_;
            rx_wb_txn_ = txn;
            rx_wb_sent_ = true;
        }
        return;
    }
}

void
Nic::collect(Cycle)
{
    if (link_->d.empty())
        return;
    const bus::Beat beat = link_->d.front();
    link_->d.pop();
    accountResponse(beat);

    // ---- TX responses ---------------------------------------------------
    if (tx_state_ == TxState::FetchDesc && beat.txn == tx_desc_txn_) {
        if (beat.denied) {
            tx_aborted_ = true;
            tx_state_ = TxState::WriteBack;
            tx_wb_sent_ = false;
            return;
        }
        if (beat.beat_idx == 0)
            tx_desc_.buffer = beat.data;
        else
            tx_desc_.len = beat.data;
        if (beat.last) {
            tx_payload_next_ = tx_desc_.buffer;
            tx_payload_remaining_ = tx_desc_.len & 0xffff'ffffULL;
            tx_payload_outstanding_ = 0;
            tx_payload_txns_.clear();
            tx_aborted_ = false;
            tx_state_ = TxState::FetchPayload;
        }
        return;
    }
    if (tx_state_ == TxState::FetchPayload &&
        tx_payload_txns_.count(beat.txn)) {
        if (beat.denied) {
            tx_aborted_ = true;
            --tx_payload_outstanding_;
            tx_payload_txns_.erase(beat.txn);
        } else if (beat.opcode == bus::Opcode::AccessAckData) {
            tx_bytes_ += bus::kBeatBytes;
            if (beat.last) {
                --tx_payload_outstanding_;
                tx_payload_txns_.erase(beat.txn);
            }
        }
        if (tx_payload_remaining_ == 0 && tx_payload_outstanding_ == 0) {
            tx_state_ = TxState::WriteBack;
            tx_wb_sent_ = false;
        }
        return;
    }
    if (tx_state_ == TxState::WriteBack && beat.txn == tx_wb_txn_) {
        ++tx_packets_;
        ++tx_head_;
        --tx_posted_;
        tx_state_ = TxState::Idle;
        return;
    }

    // ---- RX responses ---------------------------------------------------
    if (rx_state_ == RxState::FetchDesc && beat.txn == rx_desc_txn_) {
        if (beat.denied) {
            ++rx_dropped_;
            rx_state_ = RxState::Idle;
            return;
        }
        if (beat.beat_idx == 0)
            rx_desc_.buffer = beat.data;
        else
            rx_desc_.len = beat.data;
        if (beat.last) {
            rx_write_next_ = rx_desc_.buffer;
            rx_write_remaining_ = rx_cur_bytes_;
            rx_acks_outstanding_ = 0;
            rx_burst_open_ = false;
            rx_state_ = RxState::WritePayload;
        }
        return;
    }
    if (rx_state_ == RxState::WritePayload &&
        beat.opcode == bus::Opcode::AccessAck) {
        if (rx_acks_outstanding_ > 0)
            --rx_acks_outstanding_;
        if (rx_write_remaining_ == 0 && rx_acks_outstanding_ == 0 &&
            !rx_burst_open_) {
            rx_state_ = RxState::WriteBack;
            rx_wb_sent_ = false;
        }
        return;
    }
    if (rx_state_ == RxState::WriteBack && beat.txn == rx_wb_txn_) {
        rx_bytes_ += rx_cur_bytes_;
        ++rx_packets_;
        ++rx_head_;
        --rx_posted_;
        rx_state_ = RxState::Idle;
        return;
    }
}

void
Nic::evaluate(Cycle now)
{
    // One A beat per cycle total: TX and RX engines alternate priority
    // by simply trying TX first (RX writes dominate ack traffic).
    const auto before = stats_.scalar("gets_issued").value() +
                        stats_.scalar("put_beats_issued").value();
    tickTx(now);
    const auto after = stats_.scalar("gets_issued").value() +
                       stats_.scalar("put_beats_issued").value();
    if (after == before)
        tickRx(now);
    collect(now);
}

void
Nic::advance(Cycle now)
{
    DmaMaster::advance(now);
}

} // namespace dev
} // namespace siopmp
