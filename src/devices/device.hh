/**
 * @file
 * Base class for bus-master devices (DMA capable). Owns the device's
 * link toward its checker, allocates transaction ids and offers burst
 * issue/collect helpers shared by the concrete devices (DMA engine,
 * NIC, accelerator, malicious device).
 */

#ifndef DEVICES_DEVICE_HH
#define DEVICES_DEVICE_HH

#include <cstdint>

#include "bus/link.hh"
#include "sim/stats.hh"
#include "sim/tickable.hh"
#include "sim/types.hh"

namespace siopmp {
namespace dev {

class DmaMaster : public Tickable
{
  public:
    DmaMaster(std::string name, DeviceId device, bus::Link *link);

    DeviceId deviceId() const { return device_; }
    stats::Group &statsGroup() { return stats_; }

    /** Total payload bytes successfully moved (reads + writes). */
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Denied (bus-error) responses observed. */
    std::uint64_t deniedResponses() const { return denied_; }

  protected:
    /** Allocate a fresh transaction id. */
    std::uint64_t allocTxn() { return next_txn_++; }

    /** Issue the request beat(s) helpers; return false on backpressure. */
    bool tryIssueGet(Addr addr, unsigned beats);
    bool tryIssuePutBeat(Addr addr, unsigned idx, unsigned beats,
                         std::uint64_t data, std::uint64_t txn,
                         std::uint8_t strobe = 0xff);

    /** Link accessors for subclasses. */
    bus::Link *link() { return link_; }

    /** Called by subclasses when a data/ack beat arrives. */
    void accountResponse(const bus::Beat &beat);

    void advance(Cycle now) override;

    DeviceId device_;
    bus::Link *link_;
    std::uint64_t next_txn_ = 1;
    std::uint64_t last_get_txn_ = 0; //!< txn id of the last tryIssueGet
    std::uint64_t bytes_ = 0;
    std::uint64_t denied_ = 0;
    stats::Group stats_;
};

} // namespace dev
} // namespace siopmp

#endif // DEVICES_DEVICE_HH
