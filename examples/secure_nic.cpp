/**
 * @file
 * Secure NIC passthrough: the paper's motivating scenario. A TEE owns
 * a NIC and its packet buffers through the secure monitor's
 * ownership-based interface (Create_TEE / Device_map, Fig 9); the NIC
 * then moves real packets through its descriptor rings at full rate,
 * while a second, attacker-controlled NIC on the same SoC cannot touch
 * the TEE's rings or buffers.
 *
 *   $ ./secure_nic
 */

#include <cstdio>

#include "devices/malicious.hh"
#include "devices/nic.hh"
#include "fw/monitor.hh"
#include "soc/cpu_node.hh"
#include "soc/soc.hh"

using namespace siopmp;

namespace {

constexpr DeviceId kNicDevice = 10;
constexpr DeviceId kEvilDevice = 11;
constexpr Addr kTxRing = 0x8800'0000;
constexpr Addr kRxRing = 0x8800'1000;
constexpr Addr kTxBuf = 0x8810'0000;
constexpr Addr kRxBuf = 0x8820'0000;

void
writeDescriptor(mem::Backing &memory, Addr ring, unsigned idx, Addr buffer,
                std::uint64_t len)
{
    memory.write64(ring + idx * dev::NicDescriptor::kBytes, buffer);
    memory.write64(ring + idx * dev::NicDescriptor::kBytes + 8, len);
}

} // namespace

int
main()
{
    // SoC with two master ports: the TEE's NIC and an attacker device.
    soc::SocConfig cfg;
    cfg.num_masters = 2;
    cfg.checker_kind = iopmp::CheckerKind::PipelineTree;
    cfg.checker_stages = 2;
    soc::Soc soc(cfg);

    // Secure monitor with extended table + interrupt service.
    iopmp::ExtendedTable ext_table(&soc.memory(), {0x7000'0000, 0x10000});
    fw::SecureMonitor monitor(&soc.iopmp(), &soc.mmio(),
                              soc::kIopmpMmioBase, &ext_table,
                              &soc.monitor());
    monitor.init({0x8000'0000, 0x4000'0000}, {0x7000'0000, 0x10000});
    soc::CpuNode cpu("cpu0", &monitor, &soc.iopmp(), &soc.sim());
    soc.add(&cpu);

    // Devices.
    dev::NicConfig nic_cfg;
    nic_cfg.tx_ring = kTxRing;
    nic_cfg.rx_ring = kRxRing;
    dev::Nic nic("nic0", kNicDevice, soc.masterLink(0), nic_cfg);
    dev::MaliciousDevice evil("evil0", kEvilDevice, soc.masterLink(1));
    soc.add(&nic);
    soc.add(&evil);

    // --- Ownership-based setup (Fig 9) --------------------------------
    fw::CapId nic_cap = monitor.registerDevice(kNicDevice);
    fw::CapId evil_cap = monitor.registerDevice(kEvilDevice);
    const fw::OwnerId net_tee = monitor.createTee(
        "net-tee", {0x8800'0000, 0x0100'0000}, {nic_cap});
    const fw::OwnerId evil_tee = monitor.createTee(
        "evil-tee", {0x9800'0000, 0x0010'0000}, {evil_cap});
    std::printf("created TEEs: net=%u evil=%u\n", net_tee, evil_tee);

    // The net TEE maps the NIC's rings and buffers. Each mapping is an
    // IOPMP entry installed under the per-SID block.
    Cycle map_cycles = 0;
    for (auto [base, size, perm] :
         {std::tuple<Addr, Addr, Perm>{kTxRing, 0x2000, Perm::ReadWrite},
          {kTxBuf, 0x1'0000, Perm::Read},
          {kRxBuf, 0x1'0000, Perm::Write}}) {
        auto result =
            monitor.deviceMap(net_tee, kNicDevice, {base, size}, perm);
        if (!result.ok)
            fatal("device_map failed");
        map_cycles += result.cost;
    }
    std::printf("3 device_map calls took %llu CPU cycles total\n",
                static_cast<unsigned long long>(map_cycles));

    // The attacker TEE maps its own scratch region (legitimate).
    monitor.deviceMap(evil_tee, kEvilDevice, {0x9800'0000, 0x1000},
                      Perm::ReadWrite);

    // --- Traffic -------------------------------------------------------
    // Driver posts 4 TX packets and 2 RX buffers.
    for (unsigned i = 0; i < 4; ++i) {
        soc.memory().fill(kTxBuf + i * 0x800, 0x40 + i, 1024);
        writeDescriptor(soc.memory(), kTxRing, i, kTxBuf + i * 0x800,
                        1024);
    }
    for (unsigned i = 0; i < 2; ++i)
        writeDescriptor(soc.memory(), kRxRing, i, kRxBuf + i * 0x800,
                        2048);
    nic.postTx(4);
    nic.postRx(2);
    nic.injectRxPacket(1500, 0xab);
    nic.injectRxPacket(60, 0xcd); // sub-page packet: byte-granular rule

    // Meanwhile the attacker scans the TEE's RX buffers and tampers
    // with its descriptor ring.
    dev::AttackPlan scan;
    scan.kind = dev::AttackKind::ArbitraryScan;
    scan.target_base = kRxBuf;
    scan.target_size = 0x1000;
    scan.probes = 16;
    evil.startAttack(scan, 0);

    soc.sim().runUntil(
        [&] {
            return nic.txPackets() == 4 && nic.rxPackets() == 2 &&
                   evil.done();
        },
        2'000'000);

    std::printf("NIC: tx=%llu packets (%llu bytes), rx=%llu packets "
                "(%llu bytes)\n",
                static_cast<unsigned long long>(nic.txPackets()),
                static_cast<unsigned long long>(nic.txBytes()),
                static_cast<unsigned long long>(nic.rxPackets()),
                static_cast<unsigned long long>(nic.rxBytes()));
    std::printf("attacker: %llu probes denied, %llu words leaked\n",
                static_cast<unsigned long long>(evil.deniedAttacks() +
                                                evil.unflaggedWrites()),
                static_cast<unsigned long long>(evil.leakedWords()));
    std::printf("RX buffer intact: first word = %#llx (expect "
                "0xabab.. pattern)\n",
                static_cast<unsigned long long>(
                    soc.memory().read64(kRxBuf)));

    // --- Teardown: unmap and show the window really closes -------------
    auto &mappings = monitor.tee(net_tee)->mappings();
    const unsigned entry = mappings.front().entry_index;
    monitor.deviceUnmap(net_tee, kNicDevice, entry);
    const auto after =
        soc.iopmp().authorize(kNicDevice, kTxRing, 64, Perm::Read);
    std::printf("after device_unmap, NIC access to its old ring: %s\n",
                after.status == iopmp::AuthStatus::Allow ? "ALLOWED (bug!)"
                                                         : "denied");
    return 0;
}
