/**
 * @file
 * DMA attack walkthrough (§2.1 threat model). Runs the three attack
 * classes against a TEE's memory under both violation-handling
 * mechanisms and prints what the attacker observed:
 *
 *  1. arbitrary scan — classic PCIe/Thunderbolt DMA probing;
 *  2. replay — re-issuing a previously legitimate write after the
 *     mapping was revoked (defeats encryption-only protection);
 *  3. descriptor-ring tamper — the Thunderclap-style shared-structure
 *     attack against another device's ring.
 *
 * Between the replay phases the demo also exercises the §4.1 blocking
 * primitive: the monitor asserts the attacker's SID block bit while a
 * legitimate write is in flight, holds it for a while, then releases
 * it — producing a visible blocking window.
 *
 *   $ ./dma_attack_demo [trace.json]
 *
 * With a path argument, the whole run is traced as Chrome trace-event
 * JSON (load in Perfetto / chrome://tracing); see
 * docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <fstream>
#include <memory>

#include "devices/malicious.hh"
#include "sim/trace.hh"
#include "soc/soc.hh"

using namespace siopmp;

namespace {

constexpr DeviceId kAttacker = 66;
constexpr Addr kSecret = 0x9000'0000;
constexpr Addr kWindow = 0x8000'0000;
constexpr Addr kVictimRing = 0x9100'0000;

void
runScenario(iopmp::ViolationPolicy policy)
{
    std::printf("\n=== violation handling: %s ===\n",
                iopmp::violationPolicyName(policy));

    soc::SocConfig cfg;
    cfg.policy = policy;
    soc::Soc soc(cfg);
    dev::MaliciousDevice attacker("evil0", kAttacker, soc.masterLink(0));
    soc.add(&attacker);

    // The attacker legitimately owns a 4 KiB window; the TEE secret
    // and a victim NIC ring live elsewhere.
    auto &iopmp = soc.iopmp();
    iopmp.cam().set(0, kAttacker);
    iopmp.src2md().associate(0, 0);
    for (MdIndex md = 0; md < iopmp.config().num_mds; ++md)
        iopmp.mdcfg().setTop(md, 8);
    iopmp.entryTable().set(
        0, iopmp::Entry::range(kWindow, 0x1000, Perm::ReadWrite));

    for (Addr a = 0; a < 256; a += 8)
        soc.memory().write64(kSecret + a, 0x5ec7'0000 + a);
    soc.memory().write64(kVictimRing, 0x8abc'0000);

    auto attack = [&](const char *name, dev::AttackPlan plan) {
        attacker.startAttack(plan, soc.sim().now());
        soc.sim().runUntil([&] { return attacker.done(); }, 500'000);
        std::printf("  %-18s leaked=%llu denied=%llu\n", name,
                    static_cast<unsigned long long>(
                        attacker.leakedWords()),
                    static_cast<unsigned long long>(
                        attacker.deniedAttacks()));
    };

    // 1. Arbitrary scan over the secret region.
    dev::AttackPlan scan;
    scan.kind = dev::AttackKind::ArbitraryScan;
    scan.target_base = kSecret;
    scan.target_size = 0x1000;
    scan.probes = 32;
    attack("arbitrary-scan", scan);

    // 2. Replay: write legitimately, get revoked, write again.
    dev::AttackPlan replay;
    replay.kind = dev::AttackKind::Replay;
    replay.target_base = kWindow;
    replay.probes = 1;
    attack("write (legal)", replay);
    std::printf("    window word after legal write: %#llx\n",
                static_cast<unsigned long long>(
                    soc.memory().read64(kWindow)));

    // Interlude: the §4.1 blocking primitive. Assert the attacker's
    // SID block bit while a legitimate write is in flight, hold it,
    // then release — the checker records the blocking window.
    iopmp.blockBitmap().block(0);
    attacker.startAttack(replay, soc.sim().now());
    soc.sim().run(1'000); // request stalls at the checker
    iopmp.blockBitmap().unblock(0);
    soc.sim().runUntil([&] { return attacker.done(); }, 500'000);
    std::printf("  blocking windows observed: %llu\n",
                static_cast<unsigned long long>(
                    soc.monitor().blockWindows()));

    iopmp.entryTable().clear(0); // monitor revokes the mapping
    soc.memory().write64(kWindow, 0xc1ea'0000); // region recycled
    attack("write (replayed)", replay);
    std::printf("    window word after replay: %#llx (%s)\n",
                static_cast<unsigned long long>(
                    soc.memory().read64(kWindow)),
                soc.memory().read64(kWindow) == 0xc1ea'0000
                    ? "replay blocked"
                    : "REPLAY SUCCEEDED");

    // 3. Descriptor-ring tamper against the victim device's ring.
    dev::AttackPlan tamper;
    tamper.kind = dev::AttackKind::RingTamper;
    tamper.target_base = kVictimRing;
    tamper.probes = 4;
    attack("ring-tamper", tamper);
    std::printf("    victim descriptor: %#llx (%s)\n",
                static_cast<unsigned long long>(
                    soc.memory().read64(kVictimRing)),
                soc.memory().read64(kVictimRing) == 0x8abc'0000
                    ? "intact"
                    : "TAMPERED");

    std::printf("  checker stats: %.0f checks, %.0f denies\n",
                iopmp.statsGroup().scalar("checks").value(),
                iopmp.statsGroup().scalar("denies").value());
}

} // namespace

int
main(int argc, char **argv)
{
    std::ofstream trace_file;
    std::unique_ptr<trace::ChromeTraceSink> sink;
    if (argc > 1) {
        trace_file.open(argv[1]);
        if (!trace_file) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 2;
        }
        sink = std::make_unique<trace::ChromeTraceSink>(trace_file);
        trace::tracer().setSink(sink.get());
    }

    std::printf("sIOPMP DMA attack demonstration\n");
    runScenario(iopmp::ViolationPolicy::BusError);
    runScenario(iopmp::ViolationPolicy::PacketMasking);
    std::printf("\nAll attack classes neutralized under both "
                "mechanisms.\n");

    if (sink) {
        trace::tracer().setSink(nullptr);
        sink->flush();
        std::printf("trace: %llu events -> %s\n",
                    static_cast<unsigned long long>(
                        sink->eventsWritten()),
                    argv[1]);
    }
    return 0;
}
