/**
 * @file
 * Quickstart: the smallest end-to-end sIOPMP program.
 *
 * Builds the simulated SoC, grants a DMA engine a memory window
 * through the IOPMP tables, performs a real DMA copy, then shows the
 * checker blocking an access outside the granted window.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "devices/dma_engine.hh"
#include "soc/soc.hh"

using namespace siopmp;

int
main()
{
    // 1. Build an SoC: one DMA master port, MT checker (2-stage
    //    pipelined tree), bus-error violation handling.
    soc::SocConfig cfg;
    cfg.checker_kind = iopmp::CheckerKind::PipelineTree;
    cfg.checker_stages = 2;
    soc::Soc soc(cfg);

    // 2. Plug a DMA engine into master port 0.
    dev::DmaEngine dma("dma0", /*device id=*/1, soc.masterLink(0));
    soc.add(&dma);

    // 3. Configure the IOPMP: device 1 -> SID 0 (CAM row), SID 0 ->
    //    memory domain 0 (SRC2MD), MD0 owns entries [0, 8) (MDCFG),
    //    and entry 0 grants read/write on a 1 MiB window.
    auto &iopmp = soc.iopmp();
    iopmp.cam().set(/*sid=*/0, /*device=*/1);
    iopmp.src2md().associate(/*sid=*/0, /*md=*/0);
    for (MdIndex md = 0; md < iopmp.config().num_mds; ++md)
        iopmp.mdcfg().setTop(md, 8);
    iopmp.entryTable().set(
        0, iopmp::Entry::range(0x8000'0000, 0x0010'0000,
                               Perm::ReadWrite));

    // 4. Put data in memory and run a real DMA copy through the
    //    checker, crossbar and memory controller.
    for (Addr off = 0; off < 512; off += 8)
        soc.memory().write64(0x8000'0000 + off, 0x1234'0000 + off);

    dev::DmaJob copy;
    copy.kind = dev::DmaKind::Copy;
    copy.src = 0x8000'0000;
    copy.dst = 0x8008'0000;
    copy.bytes = 512;
    copy.max_outstanding = 4;
    dma.start(copy, soc.sim().now());
    soc.sim().runUntil([&] { return dma.done(); });

    std::printf("copy finished in %llu cycles; dst[0] = %#llx\n",
                static_cast<unsigned long long>(dma.completedAt() -
                                                dma.startedAt()),
                static_cast<unsigned long long>(
                    soc.memory().read64(0x8008'0000)));

    // 5. Now try to read outside the granted window: the checker
    //    denies it and the violation is latched for the monitor.
    dev::DmaJob attack;
    attack.kind = dev::DmaKind::Read;
    attack.src = 0x9000'0000; // not covered by any entry
    attack.bytes = 64;
    dma.start(attack, soc.sim().now());
    soc.sim().runUntil([&] { return dma.done(); });

    std::printf("illegal read: %llu denied response(s)\n",
                static_cast<unsigned long long>(dma.deniedResponses()));
    if (auto violation = soc.iopmp().violationRecord()) {
        std::printf("violation latched: device=%llu addr=%#llx perm=%s\n",
                    static_cast<unsigned long long>(violation->device),
                    static_cast<unsigned long long>(violation->addr),
                    permName(violation->attempted));
    }
    return 0;
}
