/**
 * @file
 * Multi-tenant cloud scenario: many virtual-function devices, few hot
 * at any moment. Demonstrates the mountable IOPMP (§4.2) and the
 * remapping CAM (§4.3):
 *
 *  - 100 virtual functions are registered as cold devices in the
 *    extended IOPMP table — far more than the hardware SID space;
 *  - an accelerator and a DMA engine run hot for two tenants;
 *  - a cold VF's first DMA triggers a SID-missing interrupt and cold
 *    device switching (mount), after which it runs on the eSID slot;
 *  - a VF that keeps being used gets implicitly promoted to a hot
 *    CAM row by the clock-LRU policy;
 *  - cross-tenant accesses are denied throughout.
 *
 *   $ ./multi_tenant
 */

#include <cstdio>
#include <iostream>

#include "devices/accelerator.hh"
#include "devices/dma_engine.hh"
#include "fw/monitor.hh"
#include "soc/cpu_node.hh"
#include "soc/soc.hh"

using namespace siopmp;

namespace {

constexpr DeviceId kAccelDevice = 20;
constexpr DeviceId kDmaDevice = 21;
constexpr DeviceId kFirstVf = 1000;
constexpr Addr kTenantABase = 0x8800'0000;
constexpr Addr kTenantBBase = 0x9000'0000;
constexpr Addr kVfBase = 0x9800'0000;

} // namespace

int
main()
{
    soc::SocConfig cfg;
    cfg.num_masters = 3; // accel, dma, one port shared by cold VFs
    soc::Soc soc(cfg);

    iopmp::ExtendedTable ext_table(&soc.memory(), {0x7000'0000, 0x10'0000});
    fw::SecureMonitor monitor(&soc.iopmp(), &soc.mmio(),
                              soc::kIopmpMmioBase, &ext_table,
                              &soc.monitor());
    monitor.init({0x8000'0000, 0x4000'0000}, {0x7000'0000, 0x10'0000});
    soc::CpuNode cpu("cpu0", &monitor, &soc.iopmp(), &soc.sim());
    soc.add(&cpu);

    // --- Tenant A: accelerator; Tenant B: DMA engine -------------------
    fw::CapId accel_cap = monitor.registerDevice(kAccelDevice);
    fw::CapId dma_cap = monitor.registerDevice(kDmaDevice);
    const fw::OwnerId tenant_a = monitor.createTee(
        "tenant-a", {kTenantABase, 0x0080'0000}, {accel_cap});
    const fw::OwnerId tenant_b = monitor.createTee(
        "tenant-b", {kTenantBBase, 0x0080'0000}, {dma_cap});

    monitor.deviceMap(tenant_a, kAccelDevice, {kTenantABase, 0x0080'0000},
                      Perm::ReadWrite);
    monitor.deviceMap(tenant_b, kDmaDevice, {kTenantBBase, 0x0080'0000},
                      Perm::ReadWrite);

    // --- 100 virtual functions registered as cold devices --------------
    for (unsigned vf = 0; vf < 100; ++vf) {
        iopmp::MountRecord record;
        record.esid = kFirstVf + vf;
        record.md_bitmap = std::uint64_t{1}
                           << (soc.iopmp().config().num_mds - 1);
        record.entries.push_back(iopmp::Entry::range(
            kVfBase + vf * 0x1'0000, 0x1'0000, Perm::ReadWrite));
        if (!monitor.registerColdDevice(record))
            fatal("extended table full");
    }
    std::printf("registered 100 cold VFs in the extended table "
                "(hardware has only %u hot SIDs)\n",
                soc.iopmp().cam().numRows());

    // --- Hot tenants run real work --------------------------------------
    dev::Accelerator accel("nvdla0", kAccelDevice, soc.masterLink(0));
    dev::DmaEngine dma("dma0", kDmaDevice, soc.masterLink(1));
    dev::DmaEngine vf_engine("vf", kFirstVf + 7, soc.masterLink(2));
    soc.add(&accel);
    soc.add(&dma);
    soc.add(&vf_engine);

    dev::LayerJob layer;
    layer.weights = kTenantABase;
    layer.inputs = kTenantABase + 0x10'0000;
    layer.outputs = kTenantABase + 0x20'0000;
    layer.tiles = 2;
    layer.tile_bytes = 2048;
    accel.start(layer, 0);

    dev::DmaJob stream;
    stream.kind = dev::DmaKind::Copy;
    stream.src = kTenantBBase;
    stream.dst = kTenantBBase + 0x10'0000;
    stream.bytes = 16384;
    stream.max_outstanding = 4;
    dma.start(stream, 0);

    // Cold VF #7 wakes up: its first DMA mounts it via the eSID slot.
    dev::DmaJob vf_job;
    vf_job.kind = dev::DmaKind::Write;
    vf_job.dst = kVfBase + 7 * 0x1'0000;
    vf_job.bytes = 512;
    vf_engine.start(vf_job, 0);

    soc.sim().runUntil(
        [&] { return accel.done() && dma.done() && vf_engine.done(); },
        5'000'000);

    std::printf("tenant A accelerator: %llu tiles, %llu bytes moved\n",
                static_cast<unsigned long long>(accel.tilesCompleted()),
                static_cast<unsigned long long>(accel.bytesTransferred()));
    std::printf("tenant B DMA: copied %llu bytes\n",
                static_cast<unsigned long long>(dma.bytesTransferred()));
    std::printf("cold VF 1007: done=%d, mounted=%s, SID misses so far="
                "%.0f\n",
                vf_engine.done(),
                soc.iopmp().mountedCold() ? "yes" : "no",
                soc.iopmp().statsGroup().scalar("sid_misses").value());

    // --- Implicit promotion: keep using the VF until it turns hot ------
    for (int round = 0; round < 4 && !monitor.hotSid(kFirstVf + 7);
         ++round) {
        // Another cold VF evicts it from the eSID slot...
        soc.iopmp().authorize(kFirstVf + 8, kVfBase + 8 * 0x1'0000, 64,
                              Perm::Read);
        monitor.serviceInterrupts(soc.sim().now());
        // ...and VF 7's next access misses again, counting toward the
        // promotion threshold.
        soc.iopmp().authorize(kFirstVf + 7, kVfBase + 7 * 0x1'0000, 64,
                              Perm::Read);
        monitor.serviceInterrupts(soc.sim().now());
    }
    if (auto sid = monitor.hotSid(kFirstVf + 7)) {
        std::printf("VF 1007 implicitly promoted to hot SID %u by the "
                    "clock-LRU policy\n", *sid);
    }

    // --- Isolation check -------------------------------------------------
    const auto cross = soc.iopmp().authorize(kAccelDevice, kTenantBBase,
                                             64, Perm::Read);
    std::printf("tenant A device reading tenant B memory: %s\n",
                cross.status == iopmp::AuthStatus::Allow ? "ALLOWED (bug!)"
                                                         : "denied");

    // --- Stats: every component this run touched -------------------------
    std::printf("\nfinal statistics:\n");
    stats::TextStatsWriter writer(std::cout);
    stats::Registry::global().accept(writer);
    return 0;
}
